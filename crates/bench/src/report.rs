//! Plain-text reporting helpers for the figure binaries.

use nimbus_sim::Row;

/// One row of a paper-vs-reproduced table.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// The quantity being reported.
    pub label: String,
    /// The value the paper reports.
    pub paper: String,
    /// The value this reproduction measured or simulated.
    pub reproduced: String,
}

impl TableRow {
    /// Creates a row.
    pub fn new(
        label: impl Into<String>,
        paper: impl Into<String>,
        reproduced: impl Into<String>,
    ) -> Self {
        Self {
            label: label.into(),
            paper: paper.into(),
            reproduced: reproduced.into(),
        }
    }
}

/// Prints a paper-vs-reproduced table.
pub fn print_table(title: &str, rows: &[TableRow]) {
    println!("\n=== {title} ===");
    let label_w = rows.iter().map(|r| r.label.len()).max().unwrap_or(8).max(8);
    let paper_w = rows.iter().map(|r| r.paper.len()).max().unwrap_or(5).max(5);
    println!("{:label_w$}  {:>paper_w$}  reproduced", "metric", "paper");
    for r in rows {
        println!(
            "{:label_w$}  {:>paper_w$}  {}",
            r.label, r.paper, r.reproduced
        );
    }
}

/// Prints simulator rows as a column-per-series table.
pub fn print_rows(title: &str, x_label: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    if rows.is_empty() {
        println!("(no data)");
        return;
    }
    let headers: Vec<&str> = rows[0].values.iter().map(|(n, _)| *n).collect();
    print!("{x_label:>12}");
    for h in &headers {
        print!("  {h:>22}");
    }
    println!();
    for row in rows {
        print!("{:>12.1}", row.x);
        for h in &headers {
            print!("  {:>22.4}", row.get(h).unwrap_or(f64::NAN));
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_construct() {
        let r = TableRow::new("single edit", "41 us", "38.2 us");
        assert_eq!(r.label, "single edit");
        print_table("Table 3", &[r]);
        print_rows(
            "fig",
            "workers",
            &[Row {
                x: 10.0,
                values: vec![("a", 1.0)],
            }],
        );
    }
}
