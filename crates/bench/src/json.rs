//! Machine-readable benchmark output.
//!
//! Every `fig*` binary writes a `BENCH_<name>.json` next to its printed
//! table, so the repository accumulates a perf trajectory that later PRs
//! (and CI) can compare against numerically instead of scraping stdout.
//! The writer is deliberately dependency-free: a flat `name` + `metrics`
//! object covers every figure, and values are numbers or strings only.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A metric value: a number (serialized with enough precision to roundtrip)
/// or a string (paper citations like `">500,000"`).
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// A numeric measurement.
    Num(f64),
    /// A free-form annotation.
    Text(String),
}

impl From<f64> for MetricValue {
    fn from(v: f64) -> Self {
        MetricValue::Num(v)
    }
}

impl From<u64> for MetricValue {
    fn from(v: u64) -> Self {
        MetricValue::Num(v as f64)
    }
}

impl From<&str> for MetricValue {
    fn from(v: &str) -> Self {
        MetricValue::Text(v.to_string())
    }
}

impl From<String> for MetricValue {
    fn from(v: String) -> Self {
        MetricValue::Text(v)
    }
}

/// Accumulates a benchmark's metrics and writes them as
/// `BENCH_<name>.json` in the current directory.
#[derive(Debug)]
pub struct BenchJson {
    name: String,
    metrics: Vec<(String, MetricValue)>,
}

impl BenchJson {
    /// Starts a report for the benchmark `name` (e.g. `"fig8_real"`).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            metrics: Vec::new(),
        }
    }

    /// Adds one metric (chainable).
    pub fn metric(mut self, key: impl Into<String>, value: impl Into<MetricValue>) -> Self {
        self.push(key, value);
        self
    }

    /// Adds one metric in place.
    pub fn push(&mut self, key: impl Into<String>, value: impl Into<MetricValue>) {
        self.metrics.push((key.into(), value.into()));
    }

    /// Serializes the report as a JSON object string.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"name\": {},\n", escape(&self.name)));
        out.push_str("  \"metrics\": {\n");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            let sep = if i + 1 == self.metrics.len() { "" } else { "," };
            let rendered = match value {
                MetricValue::Num(n) if n.is_finite() => trim_float(*n),
                // JSON has no NaN/Inf; encode them as strings.
                MetricValue::Num(n) => escape(&n.to_string()),
                MetricValue::Text(t) => escape(t),
            };
            out.push_str(&format!("    {}: {rendered}{sep}\n", escape(key)));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes `BENCH_<name>.json` in the current directory and returns its
    /// path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        self.write_to(Path::new("."))
    }

    /// Writes `BENCH_<name>.json` under `dir` and returns its path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// [`BenchJson::write`], panicking with a clear message on failure —
    /// the fig binaries treat an unwritable report as a hard error so CI
    /// can't silently lose the perf trajectory.
    pub fn write_or_die(&self) -> PathBuf {
        match self.write() {
            Ok(path) => {
                println!("\nwrote {}", path.display());
                path
            }
            Err(e) => panic!("failed to write BENCH_{}.json: {e}", self.name),
        }
    }
}

/// Serializes a float without trailing noise (integers stay integral).
fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_json() {
        let j = BenchJson::new("fig_test")
            .metric("tasks_per_sec", 12345.5)
            .metric("iterations", 100u64)
            .metric("paper", ">500,000");
        let s = j.to_json();
        assert!(s.contains("\"name\": \"fig_test\""));
        assert!(s.contains("\"tasks_per_sec\": 12345.5"));
        assert!(s.contains("\"iterations\": 100"));
        assert!(s.contains("\"paper\": \">500,000\""));
        // Exactly one trailing comma-less entry: valid JSON shape.
        assert!(!s.contains(",\n  }"));
    }

    #[test]
    fn escapes_and_non_finite_values() {
        let j = BenchJson::new("x\"y").metric("nan", f64::NAN);
        let s = j.to_json();
        assert!(s.contains("\"x\\\"y\""));
        assert!(s.contains("\"NaN\""));
    }

    #[test]
    fn writes_file_to_disk() {
        let dir = std::env::temp_dir().join("nimbus_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = BenchJson::new("unit")
            .metric("v", 1.0)
            .write_to(&dir)
            .unwrap();
        let contents = std::fs::read_to_string(&path).unwrap();
        assert!(contents.contains("\"v\": 1"));
    }
}
