//! Codec microbenchmarks: `encode`, `encode_into` (buffer reuse), `decode`,
//! and batch-frame assembly on representative control-plane envelopes.
//!
//! The end-to-end figure benches can hide a codec regression behind
//! scheduling noise; these pin the per-message encode/decode costs in
//! isolation so a slow serializer shows up immediately.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nimbus_core::ids::{
    CommandId, FunctionId, LogicalObjectId, LogicalPartition, PartitionIndex, PhysicalObjectId,
    TaskId, TemplateId, WorkerId,
};
use nimbus_core::template::WorkerInstantiation;
use nimbus_core::{Command, CommandKind, TaskParams};
use nimbus_net::framing::{append_batch_frame, parse_batch};
use nimbus_net::{
    codec, ControllerToWorker, DriverMessage, Envelope, Message, NodeId, WorkerToController,
};

/// A tiny fixed-size control message (the heartbeat/checkpoint shape).
fn small_envelope() -> Envelope {
    Envelope {
        from: NodeId::Driver,
        to: NodeId::Controller,
        message: Message::driver0(DriverMessage::Checkpoint { marker: 42 }),
    }
}

/// A realistic per-worker dispatch: eight commands with dependencies.
fn execute_commands_envelope() -> Envelope {
    let commands: Vec<Command> = (0..8u64)
        .map(|i| {
            Command::new(
                CommandId(100 + i),
                CommandKind::RunTask {
                    function: FunctionId(1),
                    task: TaskId(i),
                },
            )
            .with_writes(vec![PhysicalObjectId(i)])
            .with_before(if i == 0 {
                vec![]
            } else {
                vec![CommandId(99 + i)]
            })
        })
        .collect();
    Envelope {
        from: NodeId::Controller,
        to: NodeId::Worker(WorkerId(1)),
        message: Message::ToWorker(ControllerToWorker::ExecuteCommands {
            job: nimbus_core::JobId(1),
            commands,
        }),
    }
}

/// The steady-state hot message: a worker-template instantiation with 16
/// task slots and per-task parameters.
fn instantiation_envelope() -> Envelope {
    Envelope {
        from: NodeId::Controller,
        to: NodeId::Worker(WorkerId(0)),
        message: Message::ToWorker(ControllerToWorker::InstantiateTemplate {
            job: nimbus_core::JobId(1),
            inst: WorkerInstantiation {
                template: TemplateId(3),
                base_command_id: 1_000,
                base_transfer_id: 64,
                task_ids: (0..16).map(TaskId).collect(),
                params: (0..16).map(|i| TaskParams::from_scalar(i as f64)).collect(),
                edits: vec![],
            },
        }),
    }
}

/// A completion report (the worker -> controller return path).
fn completion_envelope() -> Envelope {
    Envelope {
        from: NodeId::Worker(WorkerId(1)),
        to: NodeId::Controller,
        message: Message::FromWorker(WorkerToController::CommandsCompleted {
            job: nimbus_core::JobId(1),
            worker: WorkerId(1),
            commands: (0..64).map(CommandId).collect(),
            compute_micros: 1234,
        }),
    }
}

fn cases() -> Vec<(&'static str, Envelope)> {
    vec![
        ("small", small_envelope()),
        ("execute_commands", execute_commands_envelope()),
        ("instantiation", instantiation_envelope()),
        ("completion", completion_envelope()),
    ]
}

fn bench_codec(c: &mut Criterion) {
    // Silence an unused-import lint trap for LogicalPartition helpers kept
    // for future cases.
    let _ = LogicalPartition::new(LogicalObjectId(1), PartitionIndex(0));

    let mut group = c.benchmark_group("codec_roundtrip");
    group.sample_size(30);
    for (name, envelope) in cases() {
        let bytes = codec::encode(&envelope).unwrap();
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_function(format!("encode/{name}"), |b| {
            b.iter(|| codec::encode(&envelope).unwrap().len());
        });
        group.bench_function(format!("encode_into/{name}"), |b| {
            let mut buf = Vec::with_capacity(bytes.len());
            b.iter(|| {
                buf.clear();
                codec::encode_into(&envelope, &mut buf).unwrap();
                buf.len()
            });
        });
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| codec::decode::<Envelope>(&bytes).unwrap());
        });
    }

    // Batch frames: assembling and parsing a 64-message cork flush.
    let batch: Vec<Envelope> = (0..64).map(|_| small_envelope()).collect();
    let mut assembled = Vec::new();
    append_batch_frame(&mut assembled, &batch).unwrap();
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("batch_frame/append_64", |b| {
        let mut buf = Vec::with_capacity(assembled.len());
        b.iter(|| {
            buf.clear();
            append_batch_frame(&mut buf, &batch).unwrap();
            buf.len()
        });
    });
    group.bench_function("batch_frame/parse_64", |b| {
        b.iter(|| parse_batch(&assembled[4..]).unwrap().len());
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
