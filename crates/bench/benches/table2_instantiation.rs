//! Table 2: per-task cost of template instantiation.
//!
//! Paper values: instantiating a controller template costs 0.2 µs per task;
//! a worker template costs 1.7 µs per task when it validates automatically
//! (back-to-back execution of the same block) and 7.3 µs with a full
//! validation pass, for a steady-state throughput above 500 000 tasks/s.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use nimbus_bench::{record_block, BlockShape};
use nimbus_core::ids::TaskId;
use nimbus_core::template::InstantiationParams;

fn shape() -> BlockShape {
    BlockShape {
        workers: 50,
        tasks_per_worker: 40,
    }
}

fn bench_instantiation(c: &mut Criterion) {
    let tasks = shape().tasks() as u64 + 1;
    let mut group = c.benchmark_group("table2_instantiation");
    group.sample_size(20);
    group.throughput(Throughput::Elements(tasks));

    // Controller-template instantiation: fill fresh task ids and parameters.
    let (mut cluster, ct, group_id) = record_block(shape());
    let controller_template = cluster.tm.registry.controller_template(ct).unwrap().clone();
    let ids: Vec<TaskId> = (0..controller_template.task_count() as u64)
        .map(|i| TaskId(1_000 + i))
        .collect();
    group.bench_function("instantiate_controller_template", |b| {
        b.iter(|| {
            controller_template
                .instantiate(&ids, &InstantiationParams::Defaults)
                .unwrap()
                .len()
        });
    });

    // Worker-template instantiation on the worker: expand the cached skeleton
    // into concrete commands from one instantiation message.
    let plan = cluster.plan_instantiation(group_id);
    let (worker, instantiation) = plan.per_worker[0].clone();
    let worker_template = cluster.tm.registry.group(group_id).unwrap().per_worker[&worker].clone();
    group.bench_function("expand_worker_template_on_worker", |b| {
        b.iter(|| worker_template.instantiate(&instantiation).unwrap().len());
    });

    // Auto-validated plan: repeated execution of the same self-validating
    // block skips validation entirely (the >500k tasks/s path).
    cluster.plan_instantiation(group_id);
    group.bench_function("plan_instantiation_auto_validated", |b| {
        b.iter(|| {
            let plan = cluster.plan_instantiation(group_id);
            assert!(plan.auto_validated);
            plan.expected_commands
        });
    });

    // Fully validated plan: a different block executed in between forces a
    // precondition check against the data manager.
    group.bench_function("plan_instantiation_full_validation", |b| {
        b.iter(|| {
            cluster.tm.last_executed = None;
            let plan = cluster.plan_instantiation(group_id);
            assert!(!plan.auto_validated);
            plan.expected_commands
        });
    });

    group.finish();
}

criterion_group!(benches, bench_instantiation);
criterion_main!(benches);
