//! Table 1: per-task cost of template installation versus central scheduling.
//!
//! Paper values: installing a task into the controller template costs 25 µs,
//! into the worker template 15 µs (controller side) + 9 µs (worker side);
//! centrally scheduling a task costs 134 µs in Nimbus and 166 µs in Spark.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use nimbus_bench::{record_block, BenchCluster, BlockShape};
use nimbus_core::template::cache::WorkerTemplateCache;

fn shape() -> BlockShape {
    BlockShape {
        workers: 50,
        tasks_per_worker: 40,
    }
}

fn bench_installation(c: &mut Criterion) {
    let tasks = shape().tasks() as u64 + 1;
    let mut group = c.benchmark_group("table1_installation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(tasks));

    // Generating and installing the controller template plus the controller
    // half of the worker templates from an already-recorded block.
    group.bench_function("generate_templates_from_recorded_block", |b| {
        b.iter_batched(
            || {
                let mut cluster = BenchCluster::new(shape());
                cluster.tm.start_recording("bench_inner").unwrap();
                for spec in cluster.iteration_specs() {
                    cluster.schedule_one(&spec);
                }
                cluster
            },
            |mut cluster| {
                cluster
                    .tm
                    .finish_recording("bench_inner", &cluster.dm, &cluster.ids)
                    .unwrap()
            },
            BatchSize::LargeInput,
        );
    });

    // Installing the worker halves into a worker's template cache.
    let (cluster, _ct, group_id) = record_block(shape());
    let templates: Vec<_> = cluster
        .tm
        .registry
        .group(group_id)
        .unwrap()
        .per_worker
        .values()
        .cloned()
        .collect();
    group.bench_function("install_worker_templates_on_workers", |b| {
        b.iter_batched(
            WorkerTemplateCache::new,
            |mut cache| {
                for t in &templates {
                    cache.install(t.clone());
                }
                cache.len()
            },
            BatchSize::SmallInput,
        );
    });

    // Central per-task scheduling (the cost templates amortize away).
    group.bench_function("centrally_schedule_block_per_task", |b| {
        b.iter_batched(
            || BenchCluster::new(shape()),
            |mut cluster| {
                let mut commands = 0usize;
                for spec in cluster.iteration_specs() {
                    commands += cluster.schedule_one(&spec);
                }
                commands
            },
            BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_installation);
criterion_main!(benches);
