//! Table 3: the cost of dynamic scheduling changes.
//!
//! Paper values: a single edit costs ≈41 µs and the cost scales linearly with
//! the number of edits; migrating 5% of an 8 000-task job (800 edits) costs
//! tens of milliseconds, still far below the ~203 ms of a complete template
//! installation — and any change at all in a Naiad-like static dataflow costs
//! the full ~230 ms re-installation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nimbus_bench::{record_block, BenchCluster, BlockShape};
use nimbus_core::template::{SkeletonEntry, SkeletonKind, TemplateEdit};

fn shape() -> BlockShape {
    BlockShape {
        workers: 50,
        tasks_per_worker: 40,
    }
}

fn bench_edits(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_edits");
    group.sample_size(20);

    // A single edit applied in place to an installed worker template.
    let (cluster, _ct, group_id) = record_block(shape());
    let worker_template = cluster
        .tm
        .registry
        .group(group_id)
        .unwrap()
        .per_worker
        .values()
        .next()
        .unwrap()
        .clone();
    group.bench_function("apply_single_edit", |b| {
        b.iter_batched(
            || worker_template.clone(),
            |mut t| {
                t.apply_edits(&[TemplateEdit::RemoveEntry { index: 0 }])
                    .unwrap();
                t.len()
            },
            BatchSize::SmallInput,
        );
    });

    // Migrating 5% of the block's tasks: plan the edits on the controller and
    // apply them through one instantiation (Figure 10's per-migration cost).
    let five_percent = (shape().tasks() as usize) / 20;
    group.bench_function("plan_and_apply_5pct_migration_edits", |b| {
        b.iter_batched(
            || record_block(shape()),
            |(mut cluster, _ct, group_id)| {
                let planned = cluster.plan_migrations("bench_inner", five_percent);
                let plan = cluster.plan_instantiation(group_id);
                (planned, plan.expected_commands)
            },
            BatchSize::LargeInput,
        );
    });

    // The alternative to edits: a complete re-installation of the templates.
    group.bench_function("complete_reinstallation", |b| {
        b.iter_batched(
            || {
                let mut cluster = BenchCluster::new(shape());
                cluster.tm.start_recording("bench_inner").unwrap();
                for spec in cluster.iteration_specs() {
                    cluster.schedule_one(&spec);
                }
                cluster
            },
            |mut cluster| {
                cluster
                    .tm
                    .finish_recording("bench_inner", &cluster.dm, &cluster.ids)
                    .unwrap()
            },
            BatchSize::LargeInput,
        );
    });

    // Bulk in-place edits scale linearly (Table 3's "cost scales with the
    // number of edits").
    group.bench_function("apply_100_edits_in_place", |b| {
        let edits: Vec<TemplateEdit> = (0..100)
            .map(|i| TemplateEdit::ReplaceEntry {
                index: i % worker_template.len(),
                entry: SkeletonEntry::new(SkeletonKind::Nop),
            })
            .collect();
        b.iter_batched(
            || worker_template.clone(),
            |mut t| {
                t.apply_edits(&edits).unwrap();
                t.len()
            },
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_edits);
criterion_main!(benches);
