//! Lock-order analysis: find cycles in the "acquired while held" graph.
//!
//! For every product function the rule extracts `Mutex`/`RwLock`
//! acquisition sites (`.lock()` / `.read()` / `.write()` with empty
//! argument lists — the io traits take arguments, so they never match) and
//! the scope each guard is held for: a `let`-bound guard lives to the end
//! of its enclosing block (or an explicit `drop(guard)`), a temporary
//! guard to the end of its statement.
//!
//! A lock's identity is its receiver field path within its crate
//! (`nimbus-controller/checkpoints`), so the same field reached through
//! different functions unifies while unrelated same-named fields in other
//! crates stay distinct. While a guard is held, every later acquisition in
//! scope adds an edge — directly, or transitively through calls to
//! same-crate functions (a fixpoint over the call graph, so `f` holding A
//! and calling `g` that locks B yields A → B even across files).
//!
//! Two lock identities in one strongly connected component mean two code
//! paths can acquire them in opposite orders: a potential deadlock,
//! reported with one example edge per direction. A self-edge in a single
//! function (the same identity acquired while held) is reported too —
//! the vendored `parking_lot` shim, like the real crate, is not reentrant.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use crate::report::{Diagnostic, Rule};
use crate::scanner::{is_ident_byte, ScannedFile};

/// Method names that are ubiquitous std/collection vocabulary: calls to
/// these never propagate lock sets through the call graph, because a name
/// match alone would be meaningless (`x.get(..)` is almost never *our*
/// `get`). Distinctively named functions still propagate.
const COMMON_NAMES: &[&str] = &[
    "new",
    "default",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "len",
    "is_empty",
    "clone",
    "drop",
    "next",
    "iter",
    "into_iter",
    "send",
    "recv",
    "write",
    "read",
    "lock",
    "flush",
    "clear",
    "contains",
    "contains_key",
    "take",
    "set",
    "from",
    "into",
    "entry",
    "extend",
    "join",
    "spawn",
    "name",
    "id",
    "tag",
];

/// One acquisition site.
#[derive(Clone, Debug)]
struct Site {
    /// Lock identity: `<crate>/<receiver path>`.
    lock: String,
    /// Byte offset in the file (span anchor).
    pos: usize,
    /// The guard is held for `[pos, scope_end)`.
    scope_end: usize,
}

/// Per-function facts feeding the inter-procedural pass.
struct FnFacts {
    rel: String,
    qualified: String,
    krate: String,
    sites: Vec<Site>,
    /// `(callee name, byte offset)` of same-crate candidate calls.
    calls: Vec<(String, usize)>,
    /// Line lookup data: the owning file's index into `files`.
    file_idx: usize,
}

/// Whole-workspace lock-order check. Returns the number of acquisition
/// sites seen (report telemetry).
pub fn check(files: &[ScannedFile], rels: &[String], out: &mut Vec<Diagnostic>) -> usize {
    // Pass 1: per-function sites and candidate calls.
    let mut facts: Vec<FnFacts> = Vec::new();
    let mut defined: BTreeMap<String, BTreeSet<String>> = BTreeMap::new(); // crate -> fn names
    for (idx, (file, rel)) in files.iter().zip(rels).enumerate() {
        let krate = crate_of(rel);
        for f in file.functions() {
            if f.in_test {
                continue;
            }
            defined
                .entry(krate.clone())
                .or_default()
                .insert(f.name.clone());
            let sites = find_sites(&file.stripped, f.body.clone(), &krate);
            let calls = find_calls(&file.stripped, f.body.clone());
            facts.push(FnFacts {
                rel: rel.clone(),
                qualified: f.qualified(),
                krate: krate.clone(),
                sites,
                calls,
                file_idx: idx,
            });
        }
    }
    let total_sites: usize = facts.iter().map(|f| f.sites.len()).sum();

    // Keep only calls that resolve to a distinctive same-crate function.
    for f in &mut facts {
        let known = defined.get(&f.krate);
        f.calls.retain(|(name, _)| {
            !COMMON_NAMES.contains(&name.as_str()) && known.is_some_and(|set| set.contains(name))
        });
    }

    // Pass 2: transitive lock sets per (crate, fn name), to fixpoint.
    let mut acquires: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let mut callees: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for f in &facts {
        let key = (
            f.krate.clone(),
            f.qualified.rsplit("::").next().unwrap_or("").to_string(),
        );
        let entry = acquires.entry(key.clone()).or_default();
        entry.extend(f.sites.iter().map(|s| s.lock.clone()));
        callees
            .entry(key)
            .or_default()
            .extend(f.calls.iter().map(|(n, _)| n.clone()));
    }
    loop {
        let mut changed = false;
        let snapshot = acquires.clone();
        for ((krate, name), callee_names) in &callees {
            let mut gained: BTreeSet<String> = BTreeSet::new();
            for callee in callee_names {
                if let Some(locks) = snapshot.get(&(krate.clone(), callee.clone())) {
                    gained.extend(locks.iter().cloned());
                }
            }
            let entry = acquires.entry((krate.clone(), name.clone())).or_default();
            let before = entry.len();
            entry.extend(gained);
            changed |= entry.len() != before;
        }
        if !changed {
            break;
        }
    }

    // Pass 3: edges. An edge records one example span per (from, to) pair.
    let mut edges: BTreeMap<(String, String), (String, usize, String)> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, rel: &str, line: usize, via: &str| {
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| (rel.to_string(), line, via.to_string()));
    };
    for f in &facts {
        let file = &files[f.file_idx];
        for (i, a) in f.sites.iter().enumerate() {
            // Later direct acquisitions while `a` is held.
            for b in f.sites.iter().skip(i + 1) {
                if b.pos > a.pos && b.pos < a.scope_end {
                    add_edge(&a.lock, &b.lock, &f.rel, file.line_of(b.pos), &f.qualified);
                }
            }
            // Calls made while `a` is held pull in the callee's locks.
            for (callee, pos) in &f.calls {
                if *pos > a.pos && *pos < a.scope_end {
                    if let Some(locks) = acquires.get(&(f.krate.clone(), callee.clone())) {
                        for lock in locks {
                            if lock != &a.lock {
                                add_edge(
                                    &a.lock,
                                    lock,
                                    &f.rel,
                                    file.line_of(*pos),
                                    &format!("{} -> {callee}()", f.qualified),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    // Self-edges: the same identity acquired while already held, in one
    // function. Reported directly (not via SCCs).
    for ((from, to), (rel, line, via)) in &edges {
        if from == to {
            out.push(Diagnostic::new(
                Rule::LockOrder,
                rel.clone(),
                *line,
                format!(
                    "`{from}` acquired while already held in `{via}`: parking_lot locks \
                     are not reentrant, this self-deadlocks"
                ),
            ));
        }
    }

    // Pass 4: SCCs over the edge graph; any component with >= 2 locks is a
    // potential deadlock (two opposite-order paths exist).
    let nodes: BTreeSet<&String> = edges.keys().flat_map(|(a, b)| [a, b]).collect();
    let index_of: BTreeMap<&String, usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let node_list: Vec<&String> = nodes.iter().copied().collect();
    let mut adj = vec![Vec::new(); node_list.len()];
    for (a, b) in edges.keys() {
        if a != b {
            adj[index_of[a]].push(index_of[b]);
        }
    }
    for comp in sccs(&adj) {
        if comp.len() < 2 {
            continue;
        }
        let members: Vec<&str> = comp.iter().map(|&i| node_list[i].as_str()).collect();
        // One example edge per direction inside the component.
        let mut examples = Vec::new();
        for ((a, b), (rel, line, via)) in &edges {
            if members.contains(&a.as_str()) && members.contains(&b.as_str()) && a != b {
                examples.push(format!("{a} -> {b} at {rel}:{line} (in {via})"));
            }
        }
        let (rel, line) = edges
            .iter()
            .find(|((a, b), _)| {
                members.contains(&a.as_str()) && members.contains(&b.as_str()) && a != b
            })
            .map(|(_, (rel, line, _))| (rel.clone(), *line))
            .unwrap_or_default();
        out.push(Diagnostic::new(
            Rule::LockOrder,
            rel,
            line,
            format!(
                "lock-order cycle between {{{}}}: opposite-order acquisition paths exist \
                 ({})",
                members.join(", "),
                examples.join("; ")
            ),
        ));
    }
    total_sites
}

/// The crate a workspace-relative path belongs to.
fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("root").to_string()
    } else {
        "root".to_string()
    }
}

/// Finds acquisition sites in a function body (stripped view).
fn find_sites(src: &str, body: Range<usize>, krate: &str) -> Vec<Site> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    for method in [".lock()", ".read()", ".write()"] {
        let mut i = body.start;
        while let Some(pos) = src[i..body.end].find(method).map(|p| p + i) {
            i = pos + method.len();
            let path = receiver_path(src, body.start, pos);
            if path.is_empty() {
                continue;
            }
            let bound = let_bound(src, body.start, pos);
            let scope_end = if let Some(var) = bound {
                guard_scope(src, body.end, pos + method.len(), &var)
            } else {
                statement_end(b, body.end, pos + method.len())
            };
            out.push(Site {
                lock: format!("{krate}/{path}"),
                pos,
                scope_end,
            });
        }
    }
    out.sort_by_key(|s| s.pos);
    out
}

/// Walks the receiver chain backwards from the `.` of `.lock()` and
/// returns the field path (method-call segments skipped, leading `self`
/// dropped): `self.inner.state.lock()` → `inner.state`.
fn receiver_path(src: &str, start: usize, dot: usize) -> String {
    let b = src.as_bytes();
    let mut segs: Vec<String> = Vec::new();
    let mut j = dot;
    loop {
        if j <= start {
            break;
        }
        let c = b[j - 1];
        if is_ident_byte(c) {
            let mut s = j;
            while s > start && is_ident_byte(b[s - 1]) {
                s -= 1;
            }
            segs.push(src[s..j].to_string());
            j = s;
        } else if c == b')' || c == b']' {
            // Skip the balanced group, then the method/field name before it
            // (a method name is not part of the lock's identity).
            let open = if c == b')' { b'(' } else { b'[' };
            let close = c;
            let mut depth = 0usize;
            while j > start {
                let c2 = b[j - 1];
                if c2 == close {
                    depth += 1;
                } else if c2 == open {
                    depth -= 1;
                    if depth == 0 {
                        j -= 1;
                        break;
                    }
                }
                j -= 1;
            }
            if c == b')' {
                // Drop the method name (if any) preceding the call parens.
                while j > start && is_ident_byte(b[j - 1]) {
                    j -= 1;
                }
            } else {
                // For `]` the preceding ident is the indexed field (no dot
                // between them): let the next iteration pick it up.
                continue;
            }
        } else {
            break;
        }
        if j > start && b[j - 1] == b'.' {
            j -= 1;
        } else {
            break;
        }
    }
    segs.reverse();
    if segs.first().is_some_and(|s| s == "self") {
        segs.remove(0);
    }
    segs.join(".")
}

/// If the statement containing `pos` is a `let` binding, returns the bound
/// variable name.
fn let_bound(src: &str, start: usize, pos: usize) -> Option<String> {
    let stmt_start = src[start..pos]
        .rfind([';', '{', '}'])
        .map(|p| p + start + 1)
        .unwrap_or(start);
    let stmt = src[stmt_start..pos].trim_start();
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest
        .trim_start()
        .strip_prefix("mut ")
        .unwrap_or(rest)
        .trim_start();
    let end = rest
        .as_bytes()
        .iter()
        .position(|&c| !is_ident_byte(c))
        .unwrap_or(rest.len());
    // Only a plain `let name = <acquire>` counts; destructuring patterns
    // don't bind a guard we can track.
    if end == 0 || !rest[end..].trim_start().starts_with('=') {
        return None;
    }
    Some(rest[..end].to_string())
}

/// The guard's scope: up to `drop(var)` if present, else the end of the
/// enclosing block.
fn guard_scope(src: &str, body_end: usize, from: usize, var: &str) -> usize {
    let block_end = enclosing_block_end(src.as_bytes(), body_end, from);
    let needle = format!("drop({var})");
    if let Some(p) = src[from..block_end].find(&needle) {
        return from + p;
    }
    block_end
}

/// First position after `from` where the enclosing block closes.
fn enclosing_block_end(b: &[u8], body_end: usize, from: usize) -> usize {
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().take(body_end).skip(from) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            _ => {}
        }
    }
    body_end
}

/// End of the statement containing `from` (the next `;` at bracket depth
/// zero, or the enclosing block end).
fn statement_end(b: &[u8], body_end: usize, from: usize) -> usize {
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().take(body_end).skip(from) {
        match c {
            b'{' | b'(' | b'[' => depth += 1,
            // Clamp at zero: an acquire inside a call argument closes its
            // enclosing parens before its statement's `;`.
            b')' | b']' => depth = (depth - 1).max(0),
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i;
                }
            }
            b';' if depth == 0 => return i,
            _ => {}
        }
    }
    body_end
}

/// `ident(`-shaped call candidates in a body (the caller filters them
/// against the crate's defined-function set).
fn find_calls(src: &str, body: Range<usize>) -> Vec<(String, usize)> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        if is_ident_byte(b[i]) && (i == body.start || !is_ident_byte(b[i - 1])) {
            let s = i;
            while i < body.end && is_ident_byte(b[i]) {
                i += 1;
            }
            let mut k = i;
            while k < body.end && b[k].is_ascii_whitespace() {
                k += 1;
            }
            if k < body.end && b[k] == b'(' {
                out.push((src[s..i].to_string(), s));
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Iterative Tarjan SCC over an adjacency list.
fn sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        // (node, next child position) work stack.
        let mut work: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut child)) = work.last_mut() {
            if *child == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *child < adj[v].len() {
                let w = adj[v][*child];
                *child += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    out.push(comp);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(sources: &[(&str, &str)]) -> (Vec<Diagnostic>, usize) {
        let files: Vec<ScannedFile> = sources
            .iter()
            .map(|(rel, src)| ScannedFile::new(PathBuf::from(rel), src.to_string()))
            .collect();
        let rels: Vec<String> = sources.iter().map(|(rel, _)| rel.to_string()).collect();
        let mut out = Vec::new();
        let sites = check(&files, &rels, &mut out);
        (out, sites)
    }

    #[test]
    fn opposite_order_in_one_file_is_a_cycle() {
        let src = "
fn forward(&self) {
    let a = self.alpha.lock();
    let b = self.beta.lock();
}
fn backward(&self) {
    let b = self.beta.lock();
    let a = self.alpha.lock();
}";
        let (d, sites) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(sites, 4);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lock-order cycle"));
        assert!(d[0].message.contains("x/alpha"));
        assert!(d[0].message.contains("x/beta"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
fn one(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
fn two(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        let (d, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cycle_through_a_call_is_found() {
        let src = "
fn holds_alpha(&self) {
    let a = self.alpha.lock();
    self.grab_beta_distinctively();
}
fn grab_beta_distinctively(&self) { let b = self.beta.lock(); }
fn reversed(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }";
        let (d, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("lock-order cycle"));
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "
fn forward(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
fn fine(&self) {
    let b = self.beta.lock();
    drop(b);
    let a = self.alpha.lock();
}";
        let (d, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn self_edge_is_reported() {
        let src = "
fn double(&self) { let a = self.alpha.lock(); let b = self.alpha.lock(); }";
        let (d, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("not reentrant"));
    }

    #[test]
    fn crates_do_not_unify_and_io_writes_do_not_match() {
        let fwd = "fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }";
        let bwd = "fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }
fn io(&self, w: &mut W, buf: &[u8]) { w.write(buf); }";
        let (d, sites) = run(&[("crates/x/src/lib.rs", fwd), ("crates/y/src/lib.rs", bwd)]);
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(sites, 4, "write(buf) must not count as an acquisition");
    }

    #[test]
    fn temporary_guard_is_held_for_its_statement_only() {
        let src = "
fn f(&self) { self.alpha.lock().push(1); let b = self.beta.lock(); }
fn g(&self) { self.beta.lock().push(1); let a = self.alpha.lock(); }";
        let (d, _) = run(&[("crates/x/src/lib.rs", src)]);
        assert!(d.is_empty(), "temporaries end at their statement: {d:?}");
    }

    #[test]
    fn receiver_paths_skip_method_calls() {
        let src = "fn f(&self) { let g = self.jobs.get(&id).unwrap().queue.lock(); }";
        let files = [ScannedFile::new(
            PathBuf::from("crates/x/src/lib.rs"),
            src.to_string(),
        )];
        let f = files[0].functions();
        let sites = find_sites(&files[0].stripped, f[0].body.clone(), "x");
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].lock, "x/jobs.queue");
    }
}
