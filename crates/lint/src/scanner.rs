//! A small hand-rolled Rust token scanner.
//!
//! The lints in this crate do not need a full parser — they need reliable
//! answers to four questions about a source file:
//!
//! 1. *Is this byte inside a comment or a string literal?* ([`strip`]
//!    blanks both out, preserving byte offsets and line structure, so a
//!    token search over the stripped text cannot be fooled by
//!    `// Instant::now()` in a comment or `".lock()"` in a string.)
//! 2. *Which function does this byte belong to?* ([`ScannedFile::functions`]
//!    segments items with brace matching and records test-module spans, so
//!    rules can attribute findings to `Type::method` and skip
//!    `#[cfg(test)]` code when a rule only governs product code.)
//! 3. *What variants (and fields) does this enum declare?*
//!    ([`parse_enums`], used by the wire and job-scoping lints.)
//! 4. *Has a human waived this finding?* ([`ScannedFile::waivers`] parses
//!    `// nimbus-lint: allow(<rule>) — <reason>` comments; an empty reason
//!    is itself a diagnostic.)
//!
//! Everything operates on byte offsets into the original text, so every
//! finding carries an exact `file:line` span.

use std::path::PathBuf;

/// Which byte classes [`strip`] blanks out (delimiters are always kept so
/// token boundaries survive).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Blank comments *and* string contents: the token-search view.
    Tokens,
    /// Blank comments, keep string contents: the enum/match parsing view.
    Code,
    /// Keep comments, blank string contents: the waiver-parsing view (a
    /// waiver is a comment; waiver-shaped text inside a string literal —
    /// e.g. in this crate's own tests — must not count).
    Comments,
}

/// Replaces comments (line, nested block) and optionally string contents
/// with spaces, byte for byte: the result has exactly the same length and
/// newline positions as the input, so offsets and line numbers computed on
/// one apply to the other.
///
/// Handles line comments, nested block comments, string literals with
/// escapes, raw strings (`r"…"`, `r#"…"#`, any number of `#`s), byte and
/// byte-raw strings, and char literals — while leaving lifetimes (`'a`)
/// alone.
pub fn strip(source: &str, mode: Mode) -> String {
    let b = source.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(b.len());
    let mut i = 0;

    // Blank `n` bytes starting at `i`, preserving newlines.
    fn blank(out: &mut Vec<u8>, b: &[u8], from: usize, to: usize) {
        for &byte in &b[from..to] {
            out.push(if byte == b'\n' { b'\n' } else { b' ' });
        }
    }

    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let end = memchr(b, i, b'\n').unwrap_or(b.len());
            if mode == Mode::Comments {
                out.extend_from_slice(&b[i..end]);
            } else {
                blank(&mut out, b, i, end);
            }
            i = end;
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < b.len() && depth > 0 {
                if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            if mode == Mode::Comments {
                out.extend_from_slice(&b[i..j]);
            } else {
                blank(&mut out, b, i, j);
            }
            i = j;
            continue;
        }
        // Raw (and byte-raw) string: r"…", r#"…"#, br"…", br##"…"##.
        if (c == b'r' || c == b'b') && !prev_is_ident(b, i) {
            let mut j = i;
            if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' && j + 1 < b.len() && (b[j + 1] == b'#' || b[j + 1] == b'"') {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' {
                    // Find closing `"####`.
                    let content_start = k + 1;
                    let mut m = content_start;
                    let close = loop {
                        match memchr(b, m, b'"') {
                            None => break b.len(),
                            Some(q) => {
                                if b[q + 1..].len() >= hashes
                                    && b[q + 1..q + 1 + hashes].iter().all(|&h| h == b'#')
                                {
                                    break q;
                                }
                                m = q + 1;
                            }
                        }
                    };
                    out.extend_from_slice(&b[i..content_start]);
                    if mode == Mode::Code {
                        out.extend_from_slice(&b[content_start..close]);
                    } else {
                        blank(&mut out, b, content_start, close);
                    }
                    let end = (close + 1 + hashes).min(b.len());
                    out.extend_from_slice(&b[close.min(b.len())..end]);
                    i = end;
                    continue;
                }
            }
        }
        // Ordinary (and byte) string.
        if c == b'"' || (c == b'b' && i + 1 < b.len() && b[i + 1] == b'"' && !prev_is_ident(b, i)) {
            let open = if c == b'"' { i } else { i + 1 };
            let mut j = open + 1;
            while j < b.len() {
                match b[j] {
                    b'\\' => j += 2,
                    b'"' => break,
                    _ => j += 1,
                }
            }
            let close = j.min(b.len());
            out.extend_from_slice(&b[i..open + 1]);
            if mode == Mode::Code {
                out.extend_from_slice(&b[open + 1..close]);
            } else {
                blank(&mut out, b, open + 1, close);
            }
            if close < b.len() {
                out.push(b'"');
            }
            i = close + 1;
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            let rest = &b[i + 1..];
            let is_char = match rest.first() {
                Some(b'\\') => true,
                Some(_) => rest.get(1) == Some(&b'\''),
                None => false,
            };
            if is_char {
                let mut j = i + 1;
                if b[j] == b'\\' {
                    j += 2;
                } else {
                    j += 1;
                }
                // Closing quote (multi-byte escapes like \u{..} walk on).
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                let end = (j + 1).min(b.len());
                out.push(b'\'');
                blank(&mut out, b, i + 1, end.saturating_sub(1).max(i + 1));
                if end > i + 1 {
                    out.push(b'\'');
                }
                i = end;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    String::from_utf8(out).expect("stripping preserves UTF-8: only ASCII is blanked")
}

fn memchr(b: &[u8], from: usize, needle: u8) -> Option<usize> {
    b[from..]
        .iter()
        .position(|&c| c == needle)
        .map(|p| p + from)
}

fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_')
}

pub(crate) fn is_ident_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// A function (or method) found in a file: name, optional `impl` type, the
/// byte range of its body, and whether it lives under `#[cfg(test)]`.
#[derive(Clone, Debug)]
pub struct Function {
    /// The bare function name.
    pub name: String,
    /// The enclosing `impl` type, when the function is a method.
    pub impl_type: Option<String>,
    /// Byte offset of the `fn` keyword (span anchor).
    pub start: usize,
    /// Byte range of the body, *inside* the braces.
    pub body: std::ops::Range<usize>,
    /// True when the function sits inside a `#[cfg(test)]` module or
    /// carries a `#[test]`/`#[cfg(test)]` attribute itself.
    pub in_test: bool,
}

impl Function {
    /// `Type::name` when the impl type is known, else `name`.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One enum variant: its name and named-field list (empty for tuple/unit).
#[derive(Clone, Debug)]
pub struct Variant {
    /// Variant name.
    pub name: String,
    /// Named fields, in declaration order (empty for tuple/unit variants).
    pub fields: Vec<String>,
    /// Byte offset of the variant name (span anchor).
    pub start: usize,
}

/// A parsed `enum` item.
#[derive(Clone, Debug)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variants in declaration order.
    pub variants: Vec<Variant>,
}

/// A waiver comment: `// nimbus-lint: allow(<rule>) — <reason>`.
#[derive(Clone, Debug)]
pub struct Waiver {
    /// The waived rule name.
    pub rule: String,
    /// The human justification (must be non-empty to be honoured).
    pub reason: String,
    /// 1-based line the waiver comment sits on.
    pub line: usize,
}

/// A source file with its stripped views and line table.
pub struct ScannedFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// The original text.
    pub raw: String,
    /// Comments and string contents blanked (token-search view).
    pub stripped: String,
    /// Comments blanked, string contents kept (enum/match parsing view).
    pub code: String,
    line_starts: Vec<usize>,
}

impl ScannedFile {
    /// Scans a file's contents.
    pub fn new(path: PathBuf, raw: String) -> Self {
        let stripped = strip(&raw, Mode::Tokens);
        let code = strip(&raw, Mode::Code);
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        Self {
            path,
            raw,
            stripped,
            code,
            line_starts,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Parses every waiver comment in the file. Only *comments* count: the
    /// scan runs over the comments-kept/strings-blanked view, so waiver
    /// syntax quoted in a string literal is invisible.
    pub fn waivers(&self) -> Vec<Waiver> {
        let comments = strip(&self.raw, Mode::Comments);
        let mut out = Vec::new();
        for (idx, line) in comments.lines().enumerate() {
            let Some(pos) = line.find("nimbus-lint:") else {
                continue;
            };
            let rest = line[pos + "nimbus-lint:".len()..].trim_start();
            let Some(rest) = rest.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rule = rest[..close].trim().to_string();
            let after = rest[close + 1..].trim_start();
            // Accept an em dash, double hyphen, or single hyphen separator.
            let reason = ["—", "--", "-"]
                .iter()
                .find_map(|sep| after.strip_prefix(sep))
                .unwrap_or("")
                .trim()
                .to_string();
            out.push(Waiver {
                rule,
                reason,
                line: idx + 1,
            });
        }
        out
    }

    /// Byte ranges covered by `#[cfg(test)]`-gated items (whole modules or
    /// single functions) plus `#[test]` functions' bodies.
    pub fn test_ranges(&self) -> Vec<std::ops::Range<usize>> {
        let b = self.stripped.as_bytes();
        let mut ranges = Vec::new();
        let mut i = 0;
        while let Some(pos) = find_token(&self.stripped, i, "#") {
            i = pos + 1;
            let rest = &self.stripped[pos..];
            let is_test_attr = rest.starts_with("#[cfg(test)]")
                || rest.starts_with("#[test]")
                || rest.starts_with("#[cfg(all(test");
            if !is_test_attr {
                continue;
            }
            // The attribute gates the next item: find its opening brace and
            // cover the whole braced body.
            if let Some(open) = find_at_depth(b, pos, b'{') {
                if let Some(close) = match_brace(b, open) {
                    ranges.push(pos..close + 1);
                    i = pos + 1; // keep scanning inside for nested attrs
                }
            }
        }
        ranges
    }

    /// Segments the file into functions (brace-aware, impl-qualified).
    pub fn functions(&self) -> Vec<Function> {
        let src = &self.stripped;
        let b = src.as_bytes();
        let tests = self.test_ranges();
        let impls = impl_ranges(src);
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(pos) = find_keyword(src, i, "fn") {
            i = pos + 2;
            // Name.
            let mut j = pos + 2;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < b.len() && is_ident_byte(b[j]) {
                j += 1;
            }
            if j == name_start {
                continue;
            }
            let name = src[name_start..j].to_string();
            // Opening brace of the body: first `{` at paren depth 0 after
            // the signature. A `;` first means a trait method declaration.
            let mut depth = 0i32;
            let mut k = j;
            let open = loop {
                if k >= b.len() {
                    break None;
                }
                match b[k] {
                    b'(' | b'[' => depth += 1,
                    b')' | b']' => depth -= 1,
                    b'{' if depth == 0 => break Some(k),
                    b';' if depth == 0 => break None,
                    _ => {}
                }
                k += 1;
            };
            let Some(open) = open else {
                continue;
            };
            let Some(close) = match_brace(b, open) else {
                continue;
            };
            let in_test = tests.iter().any(|r| r.contains(&pos));
            let impl_type = impls
                .iter()
                .filter(|(r, _)| r.contains(&pos))
                .min_by_key(|(r, _)| r.len())
                .map(|(_, t)| t.clone());
            out.push(Function {
                name,
                impl_type,
                start: pos,
                body: open + 1..close,
                in_test,
            });
        }
        out
    }
}

/// `(body range, type name)` for every `impl` block in stripped source.
fn impl_ranges(src: &str) -> Vec<(std::ops::Range<usize>, String)> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = find_keyword(src, i, "impl") {
        i = pos + 4;
        let Some(open) = find_at_depth(b, pos, b'{') else {
            continue;
        };
        let Some(close) = match_brace(b, open) else {
            continue;
        };
        // The implemented type is the last path segment before the brace
        // (after `for`, if present), generics stripped.
        let header = &src[pos + 4..open];
        let header = match header.rfind(" for ") {
            Some(p) => &header[p + 5..],
            None => header,
        };
        let name = header
            .split(|c: char| c == '<' || c == '(' || c.is_whitespace())
            .find(|s| !s.is_empty() && s.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
            .unwrap_or("")
            .to_string();
        if !name.is_empty() {
            out.push((open + 1..close, name));
        }
    }
    out
}

/// Finds `needle` at `from` or later as a standalone keyword (not part of a
/// longer identifier).
fn find_keyword(src: &str, from: usize, needle: &str) -> Option<usize> {
    let b = src.as_bytes();
    let mut i = from;
    while let Some(pos) = src[i..].find(needle).map(|p| p + i) {
        let before_ok = pos == 0 || !is_ident_byte(b[pos - 1]);
        let after = pos + needle.len();
        let after_ok = after >= b.len() || !is_ident_byte(b[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        i = pos + 1;
    }
    None
}

fn find_token(src: &str, from: usize, needle: &str) -> Option<usize> {
    src[from..].find(needle).map(|p| p + from)
}

/// First occurrence of `target` after `from`, skipping nothing (the caller
/// guarantees no earlier brace opens).
fn find_at_depth(b: &[u8], from: usize, target: u8) -> Option<usize> {
    (from..b.len()).find(|&i| b[i] == target)
}

/// Given the offset of an opening `{`, returns the offset of its matching
/// `}` (operating on stripped source, so braces in strings don't count).
pub fn match_brace(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses every `enum` in a file's `code` view (comments blanked, strings
/// kept): variant names, named fields, and spans.
pub fn parse_enums(file: &ScannedFile) -> Vec<EnumDef> {
    let src = &file.code;
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(pos) = find_keyword(src, i, "enum") {
        i = pos + 4;
        let mut j = pos + 4;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < b.len() && is_ident_byte(b[j]) {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = src[name_start..j].to_string();
        let Some(open) = find_at_depth(b, j, b'{') else {
            continue;
        };
        let Some(close) = match_brace(b, open) else {
            continue;
        };
        let variants = parse_variants(src, open + 1, close);
        out.push(EnumDef { name, variants });
    }
    out
}

fn parse_variants(src: &str, from: usize, to: usize) -> Vec<Variant> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = from;
    while i < to {
        // Skip whitespace and attributes.
        while i < to && b[i].is_ascii_whitespace() {
            i += 1;
        }
        while i < to && b[i] == b'#' {
            // Attribute: skip the bracketed group.
            let Some(open) = find_at_depth(b, i, b'[') else {
                return out;
            };
            let mut depth = 0usize;
            let mut j = open;
            while j < to {
                match b[j] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            while i < to && b[i].is_ascii_whitespace() {
                i += 1;
            }
        }
        if i >= to {
            break;
        }
        // Variant name.
        let name_start = i;
        while i < to && is_ident_byte(b[i]) {
            i += 1;
        }
        if i == name_start {
            i += 1;
            continue;
        }
        let name = src[name_start..i].to_string();
        while i < to && b[i].is_ascii_whitespace() {
            i += 1;
        }
        let mut fields = Vec::new();
        match b.get(i) {
            Some(b'{') => {
                let close = match_brace(b, i).unwrap_or(to).min(to);
                fields = parse_named_fields(src, i + 1, close);
                i = close + 1;
            }
            Some(b'(') => {
                // Tuple variant: skip the balanced parens.
                let mut depth = 0usize;
                while i < to {
                    match b[i] {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                i += 1;
            }
            _ => {}
        }
        out.push(Variant {
            name,
            fields,
            start: name_start,
        });
        // Skip to the next top-level comma.
        while i < to && b[i] != b',' {
            i += 1;
        }
        i += 1;
    }
    out
}

fn parse_named_fields(src: &str, from: usize, to: usize) -> Vec<String> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = from;
    let mut depth = 0usize;
    while i < to {
        match b[i] {
            b'<' | b'(' | b'[' => depth += 1,
            b'>' | b')' | b']' => depth = depth.saturating_sub(1),
            b':' if depth == 0 => {
                // Walk back over the field name.
                let mut j = i;
                while j > from && b[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                let end = j;
                while j > from && is_ident_byte(b[j - 1]) {
                    j -= 1;
                }
                if j < end {
                    out.push(src[j..end].to_string());
                }
                // Skip the type up to the next top-level comma.
                let mut d = 0usize;
                while i < to {
                    match b[i] {
                        b'<' | b'(' | b'[' => d += 1,
                        b'>' | b')' | b']' => d = d.saturating_sub(1),
                        b',' if d == 0 => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Parses `Enum::Variant … => "literal"` match arms anywhere in a text
/// region (the `code` view). Returns `(variant, literal)` pairs for arms of
/// the named enum.
pub fn parse_tag_arms(region: &str, enum_name: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let needle = format!("{enum_name}::");
    let b = region.as_bytes();
    let mut i = 0;
    while let Some(pos) = region[i..].find(&needle).map(|p| p + i) {
        i = pos + needle.len();
        let mut j = i;
        while j < b.len() && is_ident_byte(b[j]) {
            j += 1;
        }
        let variant = region[i..j].to_string();
        // Skip an optional pattern body `{ .. }` or `( .. )`.
        let mut k = j;
        while k < b.len() && b[k].is_ascii_whitespace() {
            k += 1;
        }
        match b.get(k) {
            Some(b'{') => {
                if let Some(c) = match_brace(b, k) {
                    k = c + 1;
                }
            }
            Some(b'(') => {
                let mut depth = 0usize;
                while k < b.len() {
                    match b[k] {
                        b'(' => depth += 1,
                        b')' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                k += 1;
            }
            _ => {}
        }
        while k < b.len() && (b[k].is_ascii_whitespace() || b[k] == b'|') {
            k += 1;
        }
        if !region[k..].starts_with("=>") {
            continue;
        }
        k += 2;
        while k < b.len() && b[k].is_ascii_whitespace() {
            k += 1;
        }
        if b.get(k) == Some(&b'"') {
            let end = region[k + 1..].find('"').map(|p| p + k + 1);
            if let Some(end) = end {
                out.push((variant, region[k + 1..end].to_string()));
            }
        } else {
            // Non-literal arm (e.g. `msg.tag()`); record with empty tag so
            // coverage checks still see the variant.
            out.push((variant, String::new()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new(PathBuf::from("test.rs"), src.to_string())
    }

    #[test]
    fn strip_preserves_length_and_newlines() {
        let src = "let a = 1; // Instant::now()\nlet b = \"thread::sleep\"; /* x\n y */ let c = 2;";
        let s = strip(src, Mode::Tokens);
        assert_eq!(s.len(), src.len());
        assert_eq!(
            s.match_indices('\n').count(),
            src.match_indices('\n').count()
        );
        assert!(!s.contains("Instant::now"));
        assert!(!s.contains("thread::sleep"));
        assert!(s.contains("let b ="));
        assert!(s.contains("let c = 2;"));
    }

    #[test]
    fn strip_handles_nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let s = strip(src, Mode::Tokens);
        assert!(s.starts_with('a'));
        assert!(s.ends_with('b'));
        assert!(!s.contains("inner"));
        assert!(!s.contains("still"));
    }

    #[test]
    fn strip_handles_raw_strings() {
        let src = r####"let x = r#"lock() "quoted" inside"# + r"plain" + "esc\"aped";"####;
        let s = strip(src, Mode::Tokens);
        assert_eq!(s.len(), src.len());
        assert!(!s.contains("lock()"));
        assert!(!s.contains("quoted"));
        assert!(!s.contains("plain"));
        assert!(!s.contains("aped"));
        assert!(s.ends_with(';'));
    }

    #[test]
    fn strip_keeps_strings_when_asked() {
        let src = "m! { A::B => \"tag\" } // comment";
        let s = strip(src, Mode::Code);
        assert!(s.contains("\"tag\""));
        assert!(!s.contains("comment"));
    }

    #[test]
    fn strip_distinguishes_chars_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }";
        let s = strip(src, Mode::Tokens);
        assert_eq!(s.len(), src.len());
        assert!(s.contains("<'a>"), "lifetime untouched: {s}");
        assert!(s.contains("&'a str"));
        assert!(!s.contains("'x'"));
    }

    #[test]
    fn functions_are_segmented_with_nested_braces() {
        let src = "impl Foo { fn alpha(&self) { if x { y(); } } }\nfn beta() -> u8 { let v = vec![1]; v[0] }";
        let f = scan(src);
        let fns = f.functions();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].qualified(), "Foo::alpha");
        assert_eq!(fns[1].qualified(), "beta");
        assert!(f.raw[fns[0].body.clone()].contains("if x { y(); }"));
        assert!(f.raw[fns[1].body.clone()].contains("v[0]"));
    }

    #[test]
    fn test_modules_are_detected() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n fn helper() {}\n #[test]\n fn case() {}\n}";
        let f = scan(src);
        let fns = f.functions();
        let by_name: std::collections::HashMap<_, _> =
            fns.iter().map(|f| (f.name.clone(), f.in_test)).collect();
        assert!(!by_name["prod"]);
        assert!(by_name["helper"]);
        assert!(by_name["case"]);
    }

    #[test]
    fn enums_parse_variants_and_named_fields() {
        let src = "pub enum M { Unit, Tup(u8, String), Named { job: JobId, n: Vec<u8> }, #[doc = \"x\"] Attr { a: u8 } }";
        let f = scan(src);
        let enums = parse_enums(&f);
        assert_eq!(enums.len(), 1);
        let m = &enums[0];
        assert_eq!(m.name, "M");
        let names: Vec<_> = m.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Unit", "Tup", "Named", "Attr"]);
        assert_eq!(m.variants[2].fields, vec!["job", "n"]);
        assert_eq!(m.variants[3].fields, vec!["a"]);
    }

    #[test]
    fn tag_arms_parse_struct_tuple_and_unit_patterns() {
        let src = r#"match self {
            M::Unit => "unit",
            M::Tup(_, _) => "tup",
            M::Named { .. } => "named",
            M::Fwd(m) => m.tag(),
        }"#;
        let arms = parse_tag_arms(src, "M");
        assert_eq!(
            arms,
            vec![
                ("Unit".to_string(), "unit".to_string()),
                ("Tup".to_string(), "tup".to_string()),
                ("Named".to_string(), "named".to_string()),
                ("Fwd".to_string(), String::new()),
            ]
        );
    }

    #[test]
    fn waivers_parse_rule_and_reason() {
        let src = "x(); // nimbus-lint: allow(clock) — real-time test\ny(); // nimbus-lint: allow(panic) —\n";
        let f = scan(src);
        let ws = f.waivers();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].rule, "clock");
        assert_eq!(ws[0].reason, "real-time test");
        assert_eq!(ws[0].line, 1);
        assert_eq!(ws[1].rule, "panic");
        assert_eq!(ws[1].reason, "");
    }

    #[test]
    fn line_of_maps_offsets() {
        let f = scan("a\nbb\nccc\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(2), 2);
        assert_eq!(f.line_of(3), 2);
        assert_eq!(f.line_of(5), 3);
    }
}
