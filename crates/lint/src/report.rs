//! Diagnostics, the human-readable table, and the machine-readable
//! `LINT_REPORT.json`.
//!
//! JSON is emitted with a tiny hand-rolled writer (the lint crate is
//! deliberately std-only); the format is flat and stable so CI tooling can
//! diff reports across runs.

use std::fmt::Write as _;
use std::path::Path;

/// One lint rule. The slug doubles as the waiver key:
/// `// nimbus-lint: allow(<slug>) — <reason>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Wall-clock reads outside the `Clock` abstraction.
    Clock,
    /// `Message` enums vs `TAGS` vs golden vectors vs codec arms.
    Wire,
    /// Command-stream variants must carry a `job` field.
    JobScope,
    /// Cycles in the inter-function lock acquisition graph.
    LockOrder,
    /// `unwrap`/`expect`/indexing in designated hot modules.
    Panic,
    /// Malformed or unused waiver comments.
    Waiver,
}

impl Rule {
    /// The rule's stable slug (used in waivers, the table, and JSON).
    pub fn slug(self) -> &'static str {
        match self {
            Rule::Clock => "clock",
            Rule::Wire => "wire",
            Rule::JobScope => "job-scope",
            Rule::LockOrder => "lock-order",
            Rule::Panic => "panic",
            Rule::Waiver => "waiver",
        }
    }

    /// All rules, in report order.
    pub fn all() -> [Rule; 6] {
        [
            Rule::Clock,
            Rule::Wire,
            Rule::JobScope,
            Rule::LockOrder,
            Rule::Panic,
            Rule::Waiver,
        ]
    }
}

/// A single finding, anchored to a `file:line` span.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line (0 for whole-file findings such as a missing vector).
    pub line: usize,
    /// Human explanation of what is wrong and what to do about it.
    pub message: String,
    /// `Some(reason)` when a waiver comment covers this finding.
    pub waived: Option<String>,
}

impl Diagnostic {
    /// A new unwaived diagnostic.
    pub fn new(
        rule: Rule,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Self {
            rule,
            file: file.into(),
            line,
            message: message.into(),
            waived: None,
        }
    }

    /// `file:line` (or just `file` for whole-file findings).
    pub fn span(&self) -> String {
        if self.line == 0 {
            self.file.clone()
        } else {
            format!("{}:{}", self.file, self.line)
        }
    }
}

/// The full result of a lint run.
#[derive(Default)]
pub struct LintReport {
    /// Every finding, waived or not.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of lock acquisition sites seen (lock-order rule telemetry).
    pub lock_sites: usize,
}

impl LintReport {
    /// Findings that no waiver covers — these fail the build.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.waived.is_none())
    }

    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.unwaived().next().is_none()
    }

    /// The human-readable table: one row per finding, grouped by rule,
    /// followed by a summary line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let span_w = self
            .diagnostics
            .iter()
            .map(|d| d.span().len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        let rule_w = Rule::all()
            .iter()
            .map(|r| r.slug().len())
            .max()
            .unwrap_or(4);
        if !self.diagnostics.is_empty() {
            let _ = writeln!(out, "{:rule_w$}  {:span_w$}  finding", "rule", "span");
            let _ = writeln!(out, "{:-<rule_w$}  {:-<span_w$}  {:-<7}", "", "", "");
            for rule in Rule::all() {
                for d in self.diagnostics.iter().filter(|d| d.rule == rule) {
                    let mark = match &d.waived {
                        Some(reason) => format!("{} [waived: {}]", d.message, reason),
                        None => d.message.clone(),
                    };
                    let _ = writeln!(out, "{:rule_w$}  {:span_w$}  {mark}", rule.slug(), d.span());
                }
            }
            let _ = writeln!(out);
        }
        let waived = self.diagnostics.len() - self.unwaived().count();
        let _ = writeln!(
            out,
            "nimbus-lint: {} file(s), {} lock site(s), {} finding(s) ({} waived, {} failing)",
            self.files_scanned,
            self.lock_sites,
            self.diagnostics.len(),
            waived,
            self.unwaived().count(),
        );
        out
    }

    /// Serializes the report as stable, flat JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"lock_sites\": {},", self.lock_sites);
        let _ = writeln!(out, "  \"failing\": {},", self.unwaived().count());
        out.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let comma = if i + 1 == self.diagnostics.len() {
                ""
            } else {
                ","
            };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"waived\": {}}}{comma}",
                json_str(d.rule.slug()),
                json_str(&d.file),
                d.line,
                json_str(&d.message),
                match &d.waived {
                    Some(r) => json_str(r),
                    None => "null".to_string(),
                }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes `LINT_REPORT.json` under `root`.
    pub fn write_json(&self, root: &Path) -> std::io::Result<()> {
        std::fs::write(root.join("LINT_REPORT.json"), self.to_json())
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waived_findings_do_not_fail() {
        let mut r = LintReport::default();
        r.diagnostics
            .push(Diagnostic::new(Rule::Clock, "a.rs", 3, "Instant::now"));
        assert!(!r.is_clean());
        r.diagnostics[0].waived = Some("bench".to_string());
        assert!(r.is_clean());
    }

    #[test]
    fn json_escapes_and_shapes() {
        let mut r = LintReport {
            files_scanned: 2,
            ..LintReport::default()
        };
        r.diagnostics.push(Diagnostic::new(
            Rule::Wire,
            "net/src/stats.rs",
            0,
            "tag \"x\\y\" missing",
        ));
        let j = r.to_json();
        assert!(j.contains("\"rule\": \"wire\""));
        assert!(j.contains("\\\"x\\\\y\\\""));
        assert!(j.contains("\"failing\": 1"));
        assert!(j.contains("\"waived\": null"));
    }

    #[test]
    fn table_mentions_summary() {
        let r = LintReport {
            files_scanned: 7,
            ..Default::default()
        };
        let t = r.render_table();
        assert!(t.contains("7 file(s)"));
        assert!(t.contains("0 failing"));
    }
}
