//! Workspace layout and per-rule policy: what gets scanned, where
//! wall-clock time is legitimate, which modules are panic-free zones, and
//! which protocol variants are deliberately job-agnostic.
//!
//! Policy lives here — in one reviewed file — rather than scattered across
//! rule implementations, so loosening it is a visible diff.

use std::path::{Path, PathBuf};

/// Directories under the workspace root that are scanned for `.rs` files.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests"];

/// Path prefixes (workspace-relative, `/`-separated) that are never
/// scanned: third-party shims, build output, and the lint crate's own
/// deliberately-bad fixture snippets.
pub const EXCLUDED: &[&str] = &["vendor/", "target/", "crates/lint/tests/fixtures/"];

/// Files and directories where wall-clock primitives (`Instant::now`,
/// `SystemTime::now`, `std::thread::sleep`) are legitimate. Everything
/// else must go through `nimbus_core::clock::Clock` (or carry a waiver).
pub const CLOCK_ALLOWED: &[(&str, &str)] = &[
    (
        "crates/core/src/clock.rs",
        "the Clock abstraction itself: the one sanctioned home of Instant::now",
    ),
    (
        "crates/bench/",
        "benchmarks measure real elapsed time by definition",
    ),
    (
        "crates/net/src/tcp.rs",
        "real OS sockets: dial backoff and accept pacing follow kernel time",
    ),
    (
        "crates/net/src/diagnostics.rs",
        "polls real OS processes; only meaningful in wall-clock time",
    ),
    (
        "crates/runtime/src/bin/",
        "OS-process entry points run under the real clock",
    ),
    (
        "crates/runtime/tests/",
        "multi-process tests coordinate real child processes",
    ),
];

/// Hot modules where panics are denied. The bool is `true` when direct
/// slice/array indexing is also denied (modules that parse untrusted wire
/// input), `false` when only `unwrap`/`expect` are denied (modules whose
/// indices are internal invariants).
pub const PANIC_FREE: &[(&str, bool)] = &[
    // Controller dispatch path: a panic here takes down every job on the
    // controller. Internal-invariant indexing is allowed; unwrap/expect
    // are not.
    ("crates/controller/src/controller.rs", false),
    // Codec decode operates on untrusted bytes off the wire: indexing is
    // denied too, so a short frame can never panic the process.
    ("crates/net/src/codec.rs", true),
    ("crates/net/src/framing.rs", true),
];

/// Command-stream variants that deliberately carry no `job` field:
/// worker-lifecycle messages that are about the worker itself, not any one
/// job. Every other `ControllerToWorker`/`WorkerToController` variant must
/// have a `job` field (the multi-tenant scoping invariant from PR 4).
pub const JOB_AGNOSTIC: &[(&str, &str, &str)] = &[
    (
        "ControllerToWorker",
        "RejoinAccepted",
        "carries per-job version state for every job via its `jobs` field",
    ),
    (
        "ControllerToWorker",
        "Shutdown",
        "terminates the worker process itself, across all jobs",
    ),
    (
        "WorkerToController",
        "Register",
        "a worker joins the cluster before it belongs to any job",
    ),
    (
        "WorkerToController",
        "Heartbeat",
        "liveness is a property of the worker, not of a job",
    ),
];

/// Wire-layer file locations cross-checked by the wire lint.
pub struct WirePaths {
    /// The protocol enums.
    pub message: &'static str,
    /// The `TAGS` table and `tag_index`.
    pub stats: &'static str,
    /// Golden vector directory.
    pub vectors_dir: &'static str,
    /// The vector harness (declares `MESSAGE_VARIANTS`).
    pub vectors_rs: &'static str,
}

/// The wire lint's fixed inputs.
pub const WIRE: WirePaths = WirePaths {
    message: "crates/net/src/message.rs",
    stats: "crates/net/src/stats.rs",
    vectors_dir: "crates/net/tests/vectors",
    vectors_rs: "crates/net/tests/vectors.rs",
};

/// True when the workspace-relative path is excluded from scanning.
pub fn is_excluded(rel: &str) -> bool {
    EXCLUDED.iter().any(|p| rel.starts_with(p))
}

/// Returns the allowlist justification when wall-clock use is legitimate
/// at this path, `None` when the clock rule applies.
pub fn clock_allowance(rel: &str) -> Option<&'static str> {
    CLOCK_ALLOWED
        .iter()
        .find(|(p, _)| rel == *p || (p.ends_with('/') && rel.starts_with(p)))
        .map(|(_, why)| *why)
}

/// Returns `Some(deny_indexing)` when the path is a panic-free zone.
pub fn panic_policy(rel: &str) -> Option<bool> {
    PANIC_FREE
        .iter()
        .find(|(p, _)| rel == *p)
        .map(|(_, idx)| *idx)
}

/// Walks the workspace and returns every scannable `.rs` file as
/// `(workspace-relative path, absolute path)`, sorted for determinism.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        } else if dir.extension().is_some_and(|e| e == "rs") && dir.is_file() {
            push_file(root, &dir, &mut out);
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            let rel = rel_of(root, &path);
            if !is_excluded(&format!("{rel}/")) {
                walk(root, &path, out)?;
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            push_file(root, &path, out);
        }
    }
    Ok(())
}

fn push_file(root: &Path, path: &Path, out: &mut Vec<(String, PathBuf)>) {
    let rel = rel_of(root, path);
    if !is_excluded(&rel) {
        out.push((rel, path.to_path_buf()));
    }
}

/// Workspace-relative, `/`-separated path string.
pub fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: walks up from the current directory until a
/// directory containing `crates/lint` appears (so the bin works from any
/// subdirectory and under `cargo run -p nimbus-lint`).
pub fn find_root() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("crates/lint").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir;
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusions_cover_vendor_and_fixtures() {
        assert!(is_excluded("vendor/serde/src/lib.rs"));
        assert!(is_excluded("crates/lint/tests/fixtures/bad_clock.rs"));
        assert!(!is_excluded("crates/lint/tests/fixtures.rs"));
        assert!(!is_excluded("crates/net/src/codec.rs"));
    }

    #[test]
    fn clock_allowlist_matches_files_and_dirs() {
        assert!(clock_allowance("crates/core/src/clock.rs").is_some());
        assert!(clock_allowance("crates/bench/src/bin/fig7_iteration_time.rs").is_some());
        assert!(clock_allowance("crates/runtime/tests/multiprocess.rs").is_some());
        assert!(clock_allowance("crates/worker/src/executor.rs").is_none());
        assert!(clock_allowance("crates/net/src/transport.rs").is_none());
    }

    #[test]
    fn panic_zones_distinguish_indexing() {
        assert_eq!(panic_policy("crates/net/src/codec.rs"), Some(true));
        assert_eq!(
            panic_policy("crates/controller/src/controller.rs"),
            Some(false)
        );
        assert_eq!(panic_policy("crates/worker/src/worker.rs"), None);
    }
}
