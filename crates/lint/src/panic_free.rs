//! Panic freedom in designated hot modules.
//!
//! A panic on the controller dispatch path kills every job the controller
//! is serving; a panic in codec decode lets one malformed frame take down
//! a node. The modules listed in [`crate::config::PANIC_FREE`] therefore
//! deny `.unwrap()` and `.expect(` in product code — and, for modules that
//! parse untrusted wire bytes, direct slice indexing too (`x[i]`), which
//! panics on a short frame where `.get(i)` returns `None`.
//!
//! Test modules are exempt: a test *should* unwrap, so a failure points at
//! the assertion.

use crate::config;
use crate::report::{Diagnostic, Rule};
use crate::scanner::{is_ident_byte, ScannedFile};

/// Runs the panic rule over one file.
pub fn check(file: &ScannedFile, rel: &str, out: &mut Vec<Diagnostic>) {
    let Some(deny_indexing) = config::panic_policy(rel) else {
        return;
    };
    let src = &file.stripped;
    let b = src.as_bytes();
    let tests = file.test_ranges();
    let in_test = |pos: usize| tests.iter().any(|r| r.contains(&pos));

    for needle in [".unwrap()", ".expect("] {
        let mut i = 0;
        while let Some(pos) = src[i..].find(needle).map(|p| p + i) {
            i = pos + needle.len();
            if in_test(pos) {
                continue;
            }
            let what = needle.trim_start_matches('.').trim_end_matches(['(', ')']);
            out.push(Diagnostic::new(
                Rule::Panic,
                rel,
                file.line_of(pos),
                format!(
                    "`{what}` in a panic-free module: return an error (or waive with a \
                     reason stating the invariant that makes the panic unreachable)"
                ),
            ));
        }
    }

    if !deny_indexing {
        return;
    }
    // Direct indexing: a `[` immediately after an expression tail (an
    // identifier byte, `)`, or `]`). Attributes (`#[...]`), macro brackets
    // (`vec![...]`), slice patterns, and type syntax all have a
    // non-expression byte before the `[` and do not match.
    for (pos, _) in src.match_indices('[') {
        if pos == 0 || in_test(pos) {
            continue;
        }
        let prev = b[pos - 1];
        if !(is_ident_byte(prev) || prev == b')' || prev == b']') {
            continue;
        }
        out.push(Diagnostic::new(
            Rule::Panic,
            rel,
            file.line_of(pos),
            "direct indexing in a decode path: use `.get()`/`.get_mut()` so short \
             or corrupt input returns an error instead of panicking"
                .to_string(),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = ScannedFile::new(PathBuf::from(rel), src.to_string());
        let mut out = Vec::new();
        check(&f, rel, &mut out);
        out
    }

    const CODEC: &str = "crates/net/src/codec.rs";
    const CONTROLLER: &str = "crates/controller/src/controller.rs";

    #[test]
    fn unwrap_and_expect_fire_in_hot_modules_only() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); }";
        assert_eq!(run(CODEC, src).len(), 2);
        assert_eq!(run(CONTROLLER, src).len(), 2);
        assert!(run("crates/worker/src/worker.rs", src).is_empty());
    }

    #[test]
    fn indexing_policy_differs_by_module() {
        let src = "fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        assert_eq!(run(CODEC, src).len(), 1, "codec denies indexing");
        assert!(
            run(CONTROLLER, src).is_empty(),
            "controller allows internal-invariant indexing"
        );
    }

    #[test]
    fn non_indexing_brackets_do_not_fire() {
        let src =
            "#[derive(Debug)]\nfn f() { let v = vec![1]; let [a, b] = pair; let t: [u8; 4] = x; }";
        assert!(run(CODEC, src).is_empty());
    }

    #[test]
    fn call_result_indexing_fires() {
        let src = "fn f() { g()[0]; h[1][2]; }";
        assert_eq!(run(CODEC, src).len(), 3);
    }

    #[test]
    fn tests_are_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); v[0]; } }";
        assert!(run(CODEC, src).is_empty());
    }
}
