//! The `nimbus-lint` binary: run the workspace lints, print the table,
//! write `LINT_REPORT.json`, and exit nonzero on unwaived findings.

use std::process::ExitCode;

fn main() -> ExitCode {
    let root = nimbus_lint::config::find_root();
    let report = match nimbus_lint::run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!(
                "nimbus-lint: cannot scan workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render_table());
    if let Err(e) = report.write_json(&root) {
        eprintln!("nimbus-lint: cannot write LINT_REPORT.json: {e}");
        return ExitCode::FAILURE;
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
