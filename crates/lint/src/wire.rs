//! Wire exhaustiveness: the protocol enums, the `TAGS` stats table, the
//! `tag_index` slot map, the `tag()`/`wire_size()` match arms, and the
//! committed golden vectors must all describe the same protocol.
//!
//! These five artifacts were re-synced by hand in PR 5 and PR 6; each sync
//! was a reviewer noticing drift. This rule makes the drift a build
//! failure instead:
//!
//! - every variant of every tagged enum has a `tag()` arm, and every
//!   `Message` variant has a `wire_size()` arm;
//! - every tag literal is in `TAGS`, every `TAGS` entry is produced by
//!   some `tag()` arm, and `tag_index` maps each `TAGS[i]` to exactly `i`;
//! - the committed vector bank has one file per variant index
//!   (`msg-NN-<tag>.bin`, contiguous `0..MESSAGE_VARIANTS`), every tag is
//!   exercised by at least one vector, and every envelope label in
//!   `vector_envelopes` has its `env-<label>.bin`.
//!
//! The checks run on parsed sources passed in as [`WireSources`], so the
//! tests can feed mutated copies (a deleted `TAGS` entry, a removed vector
//! file) and assert the lint fails.

use std::collections::BTreeMap;

use crate::report::{Diagnostic, Rule};
use crate::scanner::{parse_enums, parse_tag_arms, ScannedFile};

/// Enums whose `tag()` method must cover every variant.
const TAG_ENUMS: &[&str] = &[
    "DriverMessage",
    "ControllerToDriver",
    "ControllerToWorker",
    "WorkerToController",
    "Message",
];

/// The parsed inputs of the wire rule.
pub struct WireSources<'a> {
    /// `crates/net/src/message.rs` (enums, `tag()`, `wire_size()`).
    pub message: &'a ScannedFile,
    /// `crates/net/src/stats.rs` (`TAGS`, `tag_index`).
    pub stats: &'a ScannedFile,
    /// `crates/net/tests/vectors.rs` (`MESSAGE_VARIANTS`, envelope labels).
    pub vectors_rs: &'a ScannedFile,
    /// File names committed under `crates/net/tests/vectors/`.
    pub vector_files: Vec<String>,
}

/// Runs every wire cross-check.
pub fn check(ws: &WireSources<'_>, out: &mut Vec<Diagnostic>) {
    let message_rel = rel(ws.message);
    let stats_rel = rel(ws.stats);
    let vectors_rel = rel(ws.vectors_rs);

    // 1. Per-enum tag() coverage, collecting the leaf tag set.
    let enums = parse_enums(ws.message);
    let mut leaf_tags: Vec<(String, usize)> = Vec::new(); // (tag, line in message.rs)
    for enum_name in TAG_ENUMS {
        let Some(def) = enums.iter().find(|e| e.name == *enum_name) else {
            out.push(Diagnostic::new(
                Rule::Wire,
                &message_rel,
                0,
                format!("protocol enum `{enum_name}` not found"),
            ));
            continue;
        };
        let arms = method_arms(ws.message, enum_name, "tag");
        match arms {
            None => out.push(Diagnostic::new(
                Rule::Wire,
                &message_rel,
                0,
                format!("`{enum_name}::tag()` not found"),
            )),
            Some((arms, fn_line)) => {
                for v in &def.variants {
                    if !arms.iter().any(|(variant, _)| variant == &v.name) {
                        out.push(Diagnostic::new(
                            Rule::Wire,
                            &message_rel,
                            fn_line,
                            format!("`{enum_name}::tag()` has no arm for variant `{}`", v.name),
                        ));
                    }
                }
                for (variant, tag) in &arms {
                    if !def.variants.iter().any(|v| &v.name == variant) {
                        out.push(Diagnostic::new(
                            Rule::Wire,
                            &message_rel,
                            fn_line,
                            format!(
                                "`{enum_name}::tag()` matches `{variant}`, which is not a \
                                 variant of `{enum_name}`"
                            ),
                        ));
                    }
                    if !tag.is_empty() {
                        leaf_tags.push((tag.clone(), fn_line));
                    }
                }
            }
        }
    }

    // 2. Message::wire_size() coverage.
    if let Some(def) = enums.iter().find(|e| e.name == "Message") {
        match method_arms(ws.message, "Message", "wire_size") {
            None => out.push(Diagnostic::new(
                Rule::Wire,
                &message_rel,
                0,
                "`Message::wire_size()` not found".to_string(),
            )),
            Some((arms, fn_line)) => {
                for v in &def.variants {
                    if !arms.iter().any(|(variant, _)| variant == &v.name) {
                        out.push(Diagnostic::new(
                            Rule::Wire,
                            &message_rel,
                            fn_line,
                            format!("`Message::wire_size()` has no arm for variant `{}`", v.name),
                        ));
                    }
                }
            }
        }
    }

    // 3. TAGS vs leaf tags, both directions.
    let tags = parse_tags_array(ws.stats);
    let Some((tags, tags_line)) = tags else {
        out.push(Diagnostic::new(
            Rule::Wire,
            &stats_rel,
            0,
            "`TAGS` array not found".to_string(),
        ));
        return;
    };
    for (tag, line) in &leaf_tags {
        if !tags.iter().any(|(t, _)| t == tag) {
            out.push(Diagnostic::new(
                Rule::Wire,
                &message_rel,
                *line,
                format!(
                    "tag \"{tag}\" is produced by a tag() arm but missing from TAGS in \
                     {stats_rel}: its traffic would land in the \"other\" bucket"
                ),
            ));
        }
    }
    for (tag, line) in &tags {
        if !leaf_tags.iter().any(|(t, _)| t == tag) {
            out.push(Diagnostic::new(
                Rule::Wire,
                &stats_rel,
                *line,
                format!(
                    "TAGS entry \"{tag}\" is not produced by any tag() method: dead slot or typo"
                ),
            ));
        }
    }

    // 4. tag_index maps each TAGS[i] to exactly i.
    match fn_body_line(ws.stats, "tag_index") {
        None => out.push(Diagnostic::new(
            Rule::Wire,
            &stats_rel,
            0,
            "`tag_index` not found".to_string(),
        )),
        Some((body, fn_line)) => {
            let index_arms = parse_index_arms(&body);
            for (i, (tag, line)) in tags.iter().enumerate() {
                match index_arms.get(tag.as_str()) {
                    Some(&slot) if slot == i => {}
                    Some(&slot) => out.push(Diagnostic::new(
                        Rule::Wire,
                        &stats_rel,
                        *line,
                        format!("tag_index maps \"{tag}\" to slot {slot}, but it is TAGS[{i}]"),
                    )),
                    None => out.push(Diagnostic::new(
                        Rule::Wire,
                        &stats_rel,
                        *line,
                        format!(
                            "tag_index has no arm for \"{tag}\" (TAGS[{i}]): its traffic \
                             would land in the \"other\" bucket"
                        ),
                    )),
                }
            }
            for tag in index_arms.keys() {
                if !tags.iter().any(|(t, _)| t == tag) {
                    out.push(Diagnostic::new(
                        Rule::Wire,
                        &stats_rel,
                        fn_line,
                        format!("tag_index maps \"{tag}\", which is not in TAGS"),
                    ));
                }
            }
        }
    }
    let _ = tags_line;

    // 5. The committed vector bank.
    let variants = parse_message_variants(ws.vectors_rs);
    let Some(variants) = variants else {
        out.push(Diagnostic::new(
            Rule::Wire,
            &vectors_rel,
            0,
            "`MESSAGE_VARIANTS` constant not found".to_string(),
        ));
        return;
    };
    let env_labels = envelope_labels(ws.vectors_rs);
    // `crates/net/tests/vectors.rs` → `crates/net/tests/vectors`.
    let dir_rel = vectors_rel.trim_end_matches(".rs").to_string();

    let mut msg_by_index: BTreeMap<u32, Vec<(String, String)>> = BTreeMap::new(); // index -> (tag, file)
    let mut env_files: Vec<String> = Vec::new();
    for name in &ws.vector_files {
        if let Some(rest) = name.strip_prefix("msg-") {
            let parsed = rest
                .strip_suffix(".bin")
                .and_then(|r| r.split_once('-'))
                .and_then(|(idx, tag)| idx.parse::<u32>().ok().map(|i| (i, tag.to_string())));
            match parsed {
                Some((idx, tag)) => msg_by_index
                    .entry(idx)
                    .or_default()
                    .push((tag, name.clone())),
                None => out.push(Diagnostic::new(
                    Rule::Wire,
                    format!("{dir_rel}/{name}"),
                    0,
                    "vector file name does not match `msg-NN-<tag>.bin`".to_string(),
                )),
            }
        } else if let Some(label) = name
            .strip_prefix("env-")
            .and_then(|r| r.strip_suffix(".bin"))
        {
            env_files.push(label.to_string());
        } else {
            out.push(Diagnostic::new(
                Rule::Wire,
                format!("{dir_rel}/{name}"),
                0,
                "unexpected file in the vector bank (not `msg-*.bin` or `env-*.bin`)".to_string(),
            ));
        }
    }
    for idx in 0..variants {
        match msg_by_index.get(&idx) {
            None => out.push(Diagnostic::new(
                Rule::Wire,
                &dir_rel,
                0,
                format!(
                    "vector index {idx} has no committed `msg-{idx:02}-<tag>.bin`: \
                     regenerate with NIMBUS_REGEN_VECTORS=1 and commit the bank"
                ),
            )),
            Some(files) if files.len() > 1 => out.push(Diagnostic::new(
                Rule::Wire,
                &dir_rel,
                0,
                format!("vector index {idx} has {} committed files", files.len()),
            )),
            Some(files) => {
                let (tag, file) = &files[0];
                if !tags.iter().any(|(t, _)| t == tag) {
                    out.push(Diagnostic::new(
                        Rule::Wire,
                        format!("{dir_rel}/{file}"),
                        0,
                        format!("vector tag \"{tag}\" is not in TAGS"),
                    ));
                }
            }
        }
    }
    for (idx, _) in msg_by_index.range(variants..) {
        out.push(Diagnostic::new(
            Rule::Wire,
            &dir_rel,
            0,
            format!(
                "vector index {idx} exceeds MESSAGE_VARIANTS ({variants}): stale file or \
                 the census in {vectors_rel} was not bumped"
            ),
        ));
    }
    // Every leaf tag must be pinned by at least one vector.
    let vector_tags: Vec<&str> = msg_by_index
        .values()
        .flatten()
        .map(|(t, _)| t.as_str())
        .collect();
    for (tag, line) in &leaf_tags {
        if !vector_tags.contains(&tag.as_str()) {
            out.push(Diagnostic::new(
                Rule::Wire,
                &message_rel,
                *line,
                format!("no committed vector exercises tag \"{tag}\""),
            ));
        }
    }
    // Envelope labels, both directions.
    for label in &env_labels {
        if !env_files.contains(label) {
            out.push(Diagnostic::new(
                Rule::Wire,
                &dir_rel,
                0,
                format!("envelope label \"{label}\" has no committed `env-{label}.bin`"),
            ));
        }
    }
    for label in &env_files {
        if !env_labels.contains(label) {
            out.push(Diagnostic::new(
                Rule::Wire,
                format!("{dir_rel}/env-{label}.bin"),
                0,
                format!("no envelope labelled \"{label}\" in {vectors_rel}::vector_envelopes"),
            ));
        }
    }
}

fn rel(file: &ScannedFile) -> String {
    file.path.to_string_lossy().replace('\\', "/")
}

/// `(variant, tag)` arms of `impl <enum_name> { fn <method> }`, plus the
/// function's line.
fn method_arms(
    file: &ScannedFile,
    enum_name: &str,
    method: &str,
) -> Option<(Vec<(String, String)>, usize)> {
    let f = file
        .functions()
        .into_iter()
        .find(|f| f.name == method && f.impl_type.as_deref() == Some(enum_name))?;
    let body = &file.code[f.body.clone()];
    Some((parse_tag_arms(body, enum_name), file.line_of(f.start)))
}

/// The named free function's body (from the `code` view) and line.
fn fn_body_line(file: &ScannedFile, name: &str) -> Option<(String, usize)> {
    let f = file.functions().into_iter().find(|f| f.name == name)?;
    Some((file.code[f.body.clone()].to_string(), file.line_of(f.start)))
}

/// Parses the `TAGS` array literal: `(tag, line)` in declaration order.
fn parse_tags_array(file: &ScannedFile) -> Option<(Vec<(String, usize)>, usize)> {
    let src = &file.code;
    let decl = src.find("TAGS")?;
    let eq = decl + src[decl..].find('=')?;
    let open = eq + src[eq..].find('[')?;
    let close = matching_bracket(src.as_bytes(), open)?;
    let mut tags = Vec::new();
    let region = &src[open..close];
    let mut i = 0;
    while let Some(q) = region[i..].find('"').map(|p| p + i) {
        let end = region[q + 1..].find('"').map(|p| p + q + 1)?;
        tags.push((region[q + 1..end].to_string(), file.line_of(open + q)));
        i = end + 1;
    }
    Some((tags, file.line_of(decl)))
}

fn matching_bracket(b: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses `"tag" => N,` arms out of a `tag_index`-shaped body.
fn parse_index_arms(body: &str) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    let b = body.as_bytes();
    let mut i = 0;
    while let Some(q) = body[i..].find('"').map(|p| p + i) {
        let Some(end) = body[q + 1..].find('"').map(|p| p + q + 1) else {
            break;
        };
        let tag = body[q + 1..end].to_string();
        let mut k = end + 1;
        while k < b.len() && b[k].is_ascii_whitespace() {
            k += 1;
        }
        if body[k..].starts_with("=>") {
            k += 2;
            while k < b.len() && b[k].is_ascii_whitespace() {
                k += 1;
            }
            let num_start = k;
            while k < b.len() && b[k].is_ascii_digit() {
                k += 1;
            }
            if let Ok(slot) = body[num_start..k].parse::<usize>() {
                out.insert(tag, slot);
            }
        }
        i = end + 1;
    }
    out
}

/// Parses `const MESSAGE_VARIANTS: u32 = N;`.
fn parse_message_variants(file: &ScannedFile) -> Option<u32> {
    let src = &file.stripped;
    let decl = src.find("MESSAGE_VARIANTS")?;
    let eq = decl + src[decl..].find('=')?;
    let rest = src[eq + 1..].trim_start();
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// String literals inside `fn vector_envelopes` — the envelope labels.
fn envelope_labels(file: &ScannedFile) -> Vec<String> {
    let Some(f) = file
        .functions()
        .into_iter()
        .find(|f| f.name == "vector_envelopes")
    else {
        return Vec::new();
    };
    let body = &file.code[f.body.clone()];
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(q) = body[i..].find('"').map(|p| p + i) {
        let Some(end) = body[q + 1..].find('"').map(|p| p + q + 1) else {
            break;
        };
        out.push(body[q + 1..end].to_string());
        i = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scanned(path: &str, src: &str) -> ScannedFile {
        ScannedFile::new(PathBuf::from(path), src.to_string())
    }

    struct Toy {
        message: ScannedFile,
        stats: ScannedFile,
        vectors_rs: ScannedFile,
        vector_files: Vec<String>,
    }

    impl Toy {
        fn ws(&self) -> WireSources<'_> {
            WireSources {
                message: &self.message,
                stats: &self.stats,
                vectors_rs: &self.vectors_rs,
                vector_files: self.vector_files.clone(),
            }
        }
    }

    fn toy_sources(vector_files: Vec<&str>) -> Toy {
        let message = r#"
pub enum DriverMessage { Ping, Stop }
impl DriverMessage {
    pub fn tag(&self) -> &'static str {
        match self {
            DriverMessage::Ping => "ping",
            DriverMessage::Stop => "stop",
        }
    }
}
pub enum ControllerToDriver { Ack }
impl ControllerToDriver {
    pub fn tag(&self) -> &'static str {
        match self { ControllerToDriver::Ack => "ack" }
    }
}
pub enum ControllerToWorker { Halt { job: JobId } }
impl ControllerToWorker {
    pub fn tag(&self) -> &'static str {
        match self { ControllerToWorker::Halt { .. } => "halt" }
    }
}
pub enum WorkerToController { Done { job: JobId } }
impl WorkerToController {
    pub fn tag(&self) -> &'static str {
        match self { WorkerToController::Done { .. } => "done" }
    }
}
pub enum Message { Driver(DriverMessage), ToDriver(ControllerToDriver), ToWorker(ControllerToWorker), FromWorker(WorkerToController) }
impl Message {
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Driver(m) => m.tag(),
            Message::ToDriver(m) => m.tag(),
            Message::ToWorker(m) => m.tag(),
            Message::FromWorker(m) => m.tag(),
        }
    }
    pub fn wire_size(&self) -> usize {
        match self {
            Message::Driver(_) => 1,
            Message::ToDriver(_) => 1,
            Message::ToWorker(_) => 1,
            Message::FromWorker(_) => 1,
        }
    }
}
"#;
        let stats = r#"
pub const TAGS: [&str; 5] = ["ping", "stop", "ack", "halt", "done"];
fn tag_index(tag: &str) -> usize {
    match tag {
        "ping" => 0,
        "stop" => 1,
        "ack" => 2,
        "halt" => 3,
        "done" => 4,
        _ => 5,
    }
}
"#;
        let vectors = r#"
const MESSAGE_VARIANTS: u32 = 5;
fn vector_envelopes() -> Vec<(&'static str, Envelope)> {
    vec![("driver-controller", mk())]
}
"#;
        Toy {
            message: scanned("crates/net/src/message.rs", message),
            stats: scanned("crates/net/src/stats.rs", stats),
            vectors_rs: scanned("crates/net/tests/vectors.rs", vectors),
            vector_files: vector_files.into_iter().map(String::from).collect(),
        }
    }

    const CLEAN_FILES: [&str; 6] = [
        "msg-00-ping.bin",
        "msg-01-stop.bin",
        "msg-02-ack.bin",
        "msg-03-halt.bin",
        "msg-04-done.bin",
        "env-driver-controller.bin",
    ];

    fn run(toy: &Toy) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        check(&toy.ws(), &mut out);
        out
    }

    #[test]
    fn consistent_toy_protocol_is_clean() {
        let toy = toy_sources(CLEAN_FILES.to_vec());
        let d = run(&toy);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn deleting_a_tags_entry_fails() {
        let mut toy = toy_sources(CLEAN_FILES.to_vec());
        let src = toy
            .stats
            .raw
            .replace(", \"done\"", "")
            .replace("\"done\" => 4,\n", "");
        toy.stats = scanned("crates/net/src/stats.rs", &src);
        let d = run(&toy);
        assert!(
            d.iter()
                .any(|d| d.message.contains("\"done\"") && d.message.contains("missing from TAGS")),
            "{d:?}"
        );
    }

    #[test]
    fn deleting_a_vector_file_fails() {
        let mut files = CLEAN_FILES.to_vec();
        files.retain(|f| *f != "msg-04-done.bin");
        let toy = toy_sources(files);
        let d = run(&toy);
        assert!(
            d.iter()
                .any(|d| d.message.contains("vector index 4 has no committed")),
            "{d:?}"
        );
        assert!(
            d.iter().any(|d| d
                .message
                .contains("no committed vector exercises tag \"done\"")),
            "{d:?}"
        );
    }

    #[test]
    fn missing_tag_arm_fails() {
        let mut toy = toy_sources(CLEAN_FILES.to_vec());
        let src = toy
            .message
            .raw
            .replace("DriverMessage::Stop => \"stop\",\n", "");
        toy.message = scanned("crates/net/src/message.rs", &src);
        let d = run(&toy);
        assert!(
            d.iter()
                .any(|d| d.message.contains("no arm for variant `Stop`")),
            "{d:?}"
        );
    }

    #[test]
    fn tag_index_slot_mismatch_fails() {
        let mut toy = toy_sources(CLEAN_FILES.to_vec());
        let src = toy.stats.raw.replace("\"halt\" => 3,", "\"halt\" => 9,");
        toy.stats = scanned("crates/net/src/stats.rs", &src);
        let d = run(&toy);
        assert!(
            d.iter()
                .any(|d| d.message.contains("maps \"halt\" to slot 9")),
            "{d:?}"
        );
    }

    #[test]
    fn missing_envelope_vector_fails() {
        let toy = toy_sources(CLEAN_FILES[..5].to_vec());
        let d = run(&toy);
        assert!(
            d.iter()
                .any(|d| d.message.contains("env-driver-controller.bin")),
            "{d:?}"
        );
    }

    #[test]
    fn stray_vector_file_fails() {
        let mut files = CLEAN_FILES.to_vec();
        files.push("msg-99-ghost.bin");
        let toy = toy_sources(files);
        let d = run(&toy);
        assert!(
            d.iter()
                .any(|d| d.message.contains("exceeds MESSAGE_VARIANTS")),
            "{d:?}"
        );
    }

    #[test]
    fn wire_size_coverage_is_checked() {
        let mut toy = toy_sources(CLEAN_FILES.to_vec());
        let src = toy
            .message
            .raw
            .replace("Message::FromWorker(_) => 1,\n", "");
        toy.message = scanned("crates/net/src/message.rs", &src);
        let d = run(&toy);
        assert!(
            d.iter().any(|d| d
                .message
                .contains("`Message::wire_size()` has no arm for variant `FromWorker`")),
            "{d:?}"
        );
    }
}
