//! Clock discipline: wall-clock primitives are denied outside the `Clock`
//! abstraction and an explicit allowlist.
//!
//! Replay determinism in `nimbus-dst` holds only if every time read in the
//! runtime goes through `nimbus_core::clock::Clock`, which the simulation
//! swaps for virtual time. A single stray `Instant::now()` makes schedules
//! unreproducible in a way no dynamic test reliably catches — so the rule
//! is syntactic and total: the tokens below may not appear anywhere outside
//! `crates/core/src/clock.rs` and the allowlist in [`crate::config`].
//!
//! Test modules are scanned too: a test that sleeps or reads real time is
//! either genuinely about real time (waive it, or move the file to an
//! allowlisted OS-process test dir) or a latent source of flakes.

use crate::config;
use crate::report::{Diagnostic, Rule};
use crate::scanner::{is_ident_byte, ScannedFile};

/// The denied wall-clock tokens. `thread::sleep` also matches
/// `std::thread::sleep`; matching is token-boundary-aware, so
/// `virtual_thread::sleepy` does not fire.
const DENIED: &[&str] = &["Instant::now", "SystemTime::now", "thread::sleep"];

/// Runs the clock rule over one file.
pub fn check(file: &ScannedFile, rel: &str, out: &mut Vec<Diagnostic>) {
    if let Some(_why) = config::clock_allowance(rel) {
        return;
    }
    let src = &file.stripped;
    let b = src.as_bytes();
    for needle in DENIED {
        let mut i = 0;
        while let Some(pos) = src[i..].find(needle).map(|p| p + i) {
            i = pos + needle.len();
            // Token boundaries: no identifier byte on either side (a `::`
            // prefix like `std::thread::sleep` is fine and expected).
            let before_ok = pos == 0 || !is_ident_byte(b[pos - 1]);
            let after = pos + needle.len();
            let after_ok = after >= b.len() || !is_ident_byte(b[after]);
            if !(before_ok && after_ok) {
                continue;
            }
            out.push(Diagnostic::new(
                Rule::Clock,
                rel,
                file.line_of(pos),
                format!(
                    "`{needle}` outside the Clock abstraction: route timing through \
                     nimbus_core::clock::Clock (or add an allowlist entry in \
                     crates/lint/src/config.rs with a justification)"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(rel: &str, src: &str) -> Vec<Diagnostic> {
        let f = ScannedFile::new(PathBuf::from(rel), src.to_string());
        let mut out = Vec::new();
        check(&f, rel, &mut out);
        out
    }

    #[test]
    fn flags_all_three_primitives_with_lines() {
        let src = "fn f() {\n let t = Instant::now();\n std::thread::sleep(d);\n let w = SystemTime::now();\n}";
        let d = run("crates/worker/src/executor.rs", src);
        assert_eq!(d.len(), 3);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![2, 4, 3]);
    }

    #[test]
    fn comments_strings_and_allowlisted_paths_are_exempt() {
        let src = "// Instant::now()\nlet s = \"thread::sleep\";";
        assert!(run("crates/worker/src/worker.rs", src).is_empty());
        let real = "let t = Instant::now();";
        assert!(run("crates/core/src/clock.rs", real).is_empty());
        assert!(run("crates/bench/src/bin/fig7_iteration_time.rs", real).is_empty());
        assert!(!run("crates/controller/src/controller.rs", real).is_empty());
    }

    #[test]
    fn token_boundaries_prevent_substring_hits() {
        let src = "my_thread::sleepy(); InstantX::nowhere();";
        assert!(run("crates/worker/src/worker.rs", src).is_empty());
    }
}
