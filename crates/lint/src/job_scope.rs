//! Job scoping: every command-stream variant carries a `JobId`.
//!
//! The control plane is multi-tenant (PR 4): one controller and one worker
//! pool serve many mutually isolated jobs, and isolation rests on every
//! `ControllerToWorker`/`WorkerToController` message naming the job it
//! belongs to. A variant added without a `job` field would route by
//! whatever ambient state happens to be around — the exact bug class this
//! rule deletes. Deliberately job-agnostic worker-lifecycle variants are
//! enumerated (with justifications) in [`crate::config::JOB_AGNOSTIC`].

use crate::config;
use crate::report::{Diagnostic, Rule};
use crate::scanner::{parse_enums, ScannedFile};

/// The command-stream enums the rule governs.
const SCOPED_ENUMS: &[&str] = &["ControllerToWorker", "WorkerToController"];

/// Runs the job-scoping rule over the message definitions file.
pub fn check(message_file: &ScannedFile, rel: &str, out: &mut Vec<Diagnostic>) {
    let enums = parse_enums(message_file);
    for name in SCOPED_ENUMS {
        let Some(def) = enums.iter().find(|e| e.name == *name) else {
            out.push(Diagnostic::new(
                Rule::JobScope,
                rel,
                0,
                format!("command-stream enum `{name}` not found in {rel}"),
            ));
            continue;
        };
        for variant in &def.variants {
            if variant.fields.iter().any(|f| f == "job") {
                continue;
            }
            if config::JOB_AGNOSTIC
                .iter()
                .any(|(e, v, _)| e == name && v == &variant.name)
            {
                continue;
            }
            out.push(Diagnostic::new(
                Rule::JobScope,
                rel,
                message_file.line_of(variant.start),
                format!(
                    "`{name}::{}` has no `job: JobId` field: every command-stream \
                     variant must be job-scoped (or listed as job-agnostic, with a \
                     justification, in crates/lint/src/config.rs)",
                    variant.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(src: &str) -> Vec<Diagnostic> {
        let f = ScannedFile::new(PathBuf::from("message.rs"), src.to_string());
        let mut out = Vec::new();
        check(&f, "crates/net/src/message.rs", &mut out);
        out
    }

    #[test]
    fn unscoped_variant_fires_exempt_variant_does_not() {
        let src = "pub enum ControllerToWorker {\n Halt { job: JobId },\n Shutdown,\n Probe { worker: WorkerId },\n}\npub enum WorkerToController { Heartbeat { worker: WorkerId } }";
        let d = run(src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ControllerToWorker::Probe"));
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn missing_enum_is_reported() {
        let d = run("pub enum ControllerToWorker { Halt { job: JobId } }");
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("WorkerToController"));
    }
}
