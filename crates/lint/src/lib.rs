//! `nimbus-lint`: workspace static analysis for the runtime's own
//! invariants.
//!
//! Five domain lints run over every workspace source file on each
//! invocation (`cargo run -p nimbus-lint`, the `workspace_clean` tier-1
//! test, and the CI `lint` job):
//!
//! | rule         | invariant                                                    |
//! |--------------|--------------------------------------------------------------|
//! | `clock`      | no wall-clock reads outside `Clock` + allowlist              |
//! | `wire`       | enums, `TAGS`, `tag_index`, match arms, vectors in lockstep  |
//! | `job-scope`  | command-stream variants carry a `job: JobId` field           |
//! | `lock-order` | no cycles in the "acquired while held" graph                 |
//! | `panic`      | no `unwrap`/`expect`/indexing in designated hot modules      |
//!
//! A finding can be waived in place with a comment on the same or the
//! preceding line — `nimbus-lint: allow(<rule>) — <reason>` (`--` works
//! as the separator too) — but the reason must be non-empty and the
//! waiver must match a real finding; empty-reason and unused waivers are
//! themselves diagnostics (`waiver` rule), so stale suppressions cannot
//! accumulate. Results are printed as a table and written to
//! `LINT_REPORT.json` at the workspace root.

use std::path::Path;

pub mod clock;
pub mod config;
pub mod job_scope;
pub mod locks;
pub mod panic_free;
pub mod report;
pub mod scanner;
pub mod wire;

pub use report::{Diagnostic, LintReport, Rule};
use scanner::ScannedFile;

/// Runs every lint over the workspace rooted at `root`.
pub fn run(root: &Path) -> std::io::Result<LintReport> {
    let mut scanned: Vec<ScannedFile> = Vec::new();
    let mut rels: Vec<String> = Vec::new();
    for (rel, abs) in config::workspace_files(root)? {
        let raw = std::fs::read_to_string(&abs)?;
        scanned.push(ScannedFile::new(abs, raw));
        rels.push(rel);
    }

    let mut diags: Vec<Diagnostic> = Vec::new();

    // Per-file rules.
    for (file, rel) in scanned.iter().zip(&rels) {
        clock::check(file, rel, &mut diags);
        panic_free::check(file, rel, &mut diags);
    }

    // Protocol rules, anchored to the wire-layer files.
    let by_rel = |rel: &str| rels.iter().position(|r| r == rel).map(|i| &scanned[i]);
    match by_rel(config::WIRE.message) {
        Some(message) => job_scope::check(message, config::WIRE.message, &mut diags),
        None => diags.push(Diagnostic::new(
            Rule::JobScope,
            config::WIRE.message,
            0,
            "message definitions file not found".to_string(),
        )),
    }
    match (
        by_rel(config::WIRE.message),
        by_rel(config::WIRE.stats),
        by_rel(config::WIRE.vectors_rs),
    ) {
        (Some(message), Some(stats), Some(vectors_rs)) => {
            let mut vector_files: Vec<String> =
                std::fs::read_dir(root.join(config::WIRE.vectors_dir))
                    .map(|entries| {
                        entries
                            .filter_map(|e| e.ok())
                            .map(|e| e.file_name().to_string_lossy().into_owned())
                            .collect()
                    })
                    .unwrap_or_default();
            vector_files.sort();
            // The rule needs workspace-relative spans; rebuild the parsed
            // views against relative paths.
            let message = reanchor(message, config::WIRE.message);
            let stats = reanchor(stats, config::WIRE.stats);
            let vectors_rs = reanchor(vectors_rs, config::WIRE.vectors_rs);
            wire::check(
                &wire::WireSources {
                    message: &message,
                    stats: &stats,
                    vectors_rs: &vectors_rs,
                    vector_files,
                },
                &mut diags,
            );
        }
        _ => diags.push(Diagnostic::new(
            Rule::Wire,
            config::WIRE.message,
            0,
            "wire-layer sources not found (message.rs / stats.rs / vectors.rs)".to_string(),
        )),
    }

    // Whole-workspace lock-order analysis.
    let lock_sites = locks::check(&scanned, &rels, &mut diags);

    // Waivers.
    apply_waivers(&scanned, &rels, &mut diags);

    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    let mut report = LintReport {
        diagnostics: diags,
        files_scanned: scanned.len(),
        lock_sites,
    };
    report.diagnostics.shrink_to_fit();
    Ok(report)
}

/// Re-scans a file under a workspace-relative path so rule spans are
/// relative (the orchestrator reads files by absolute path).
fn reanchor(file: &ScannedFile, rel: &str) -> ScannedFile {
    ScannedFile::new(rel.into(), file.raw.clone())
}

/// Applies `nimbus-lint: allow(<rule>) — <reason>` comments: a waiver on
/// the same line as a finding, or on the line directly above it, marks the
/// finding waived. Empty reasons and waivers that match nothing are
/// reported under the `waiver` rule.
pub fn apply_waivers(scanned: &[ScannedFile], rels: &[String], diags: &mut Vec<Diagnostic>) {
    let slugs: Vec<&str> = Rule::all().iter().map(|r| r.slug()).collect();
    let mut extra: Vec<Diagnostic> = Vec::new();
    for (file, rel) in scanned.iter().zip(rels) {
        for waiver in file.waivers() {
            // Unknown rule names are not waivers (doc text uses `<rule>`
            // placeholders); known ones must be well-formed and used.
            if !slugs.contains(&waiver.rule.as_str()) {
                continue;
            }
            if waiver.reason.is_empty() {
                extra.push(Diagnostic::new(
                    Rule::Waiver,
                    rel,
                    waiver.line,
                    format!(
                        "waiver for `{}` has no reason: write `nimbus-lint: allow({}) — <why \
                         this is sound>`",
                        waiver.rule, waiver.rule
                    ),
                ));
                continue;
            }
            let mut used = false;
            for d in diags.iter_mut() {
                if d.rule.slug() == waiver.rule
                    && d.file == *rel
                    && (d.line == waiver.line || d.line == waiver.line + 1)
                {
                    d.waived = Some(waiver.reason.clone());
                    used = true;
                }
            }
            if !used {
                extra.push(Diagnostic::new(
                    Rule::Waiver,
                    rel,
                    waiver.line,
                    format!(
                        "unused waiver for `{}`: no matching finding on this or the next \
                         line — delete it",
                        waiver.rule
                    ),
                ));
            }
        }
    }
    diags.extend(extra);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn file(rel: &str, src: &str) -> (ScannedFile, String) {
        (
            ScannedFile::new(PathBuf::from(rel), src.to_string()),
            rel.to_string(),
        )
    }

    #[test]
    fn waiver_on_same_line_suppresses() {
        let rel = "crates/worker/src/executor.rs";
        let src = "fn f() { let t = Instant::now(); } // nimbus-lint: allow(clock) — measured spin-wait\n";
        let (f, r) = file(rel, src);
        let mut diags = Vec::new();
        clock::check(&f, &r, &mut diags);
        assert_eq!(diags.len(), 1);
        apply_waivers(&[f], &[r], &mut diags);
        assert!(diags.iter().all(|d| d.waived.is_some()), "{diags:?}");
    }

    #[test]
    fn waiver_on_preceding_line_suppresses() {
        let rel = "crates/worker/src/executor.rs";
        let src = "// nimbus-lint: allow(clock) -- measured spin-wait\nfn f() { let t = Instant::now(); }\n";
        let (f, r) = file(rel, src);
        let mut diags = Vec::new();
        clock::check(&f, &r, &mut diags);
        apply_waivers(&[f], &[r], &mut diags);
        assert!(diags.iter().all(|d| d.waived.is_some()), "{diags:?}");
    }

    #[test]
    fn empty_reason_and_unused_waivers_are_findings() {
        let rel = "crates/worker/src/executor.rs";
        let src = "// nimbus-lint: allow(clock) —\nfn ok() {}\n// nimbus-lint: allow(panic) — but nothing here\nfn also_ok() {}\n";
        let (f, r) = file(rel, src);
        let mut diags = Vec::new();
        clock::check(&f, &r, &mut diags);
        apply_waivers(&[f], &[r], &mut diags);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == Rule::Waiver));
        assert!(diags.iter().any(|d| d.message.contains("no reason")));
        assert!(diags.iter().any(|d| d.message.contains("unused waiver")));
    }

    #[test]
    fn placeholder_rule_names_in_docs_are_ignored() {
        let rel = "crates/worker/src/worker.rs";
        let src = "//! Waive with `nimbus-lint: allow(<rule>) — <reason>`.\nfn ok() {}\n";
        let (f, r) = file(rel, src);
        let mut diags = Vec::new();
        apply_waivers(&[f], &[r], &mut diags);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
