//! Fixture-driven tests: each lint must fire on its bad fixture at the
//! expected `file:line` spans, and the wire lint must fail when the real
//! workspace's `TAGS` array or vector bank loses an entry.
//!
//! The fixture sources live in `tests/fixtures/` (excluded from workspace
//! scans) and are loaded under a plausible workspace-relative path so the
//! per-path policies (clock allowlist, panic-free list) apply.

use std::path::{Path, PathBuf};

use nimbus_lint::scanner::ScannedFile;
use nimbus_lint::{apply_waivers, clock, config, job_scope, locks, panic_free, wire};
use nimbus_lint::{Diagnostic, Rule};

/// Loads a fixture file, re-anchored under `rel` so path-keyed policies
/// (allowlists, panic-free modules) treat it as product code.
fn fixture(name: &str, rel: &str) -> (ScannedFile, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    (ScannedFile::new(PathBuf::from(rel), raw), rel.to_string())
}

/// Spans sorted by line: individual rules emit per-needle, and the
/// orchestrator (not the rule) does the final ordering.
fn spans(diags: &[Diagnostic]) -> Vec<(String, usize)> {
    let mut spans: Vec<(String, usize)> = diags.iter().map(|d| (d.file.clone(), d.line)).collect();
    spans.sort();
    spans
}

#[test]
fn clock_fixture_fires_at_every_wall_clock_read() {
    let rel = "crates/worker/src/executor.rs";
    let (f, r) = fixture("bad_clock.rs", rel);
    let mut diags = Vec::new();
    clock::check(&f, &r, &mut diags);
    assert!(diags.iter().all(|d| d.rule == Rule::Clock));
    assert_eq!(
        spans(&diags),
        vec![
            (rel.to_string(), 6),  // Instant::now
            (rel.to_string(), 7),  // thread::sleep
            (rel.to_string(), 12), // SystemTime::now
        ],
        "{diags:?}"
    );
}

#[test]
fn clock_fixture_is_silent_under_an_allowlisted_path() {
    let (f, r) = fixture("bad_clock.rs", "crates/core/src/clock.rs");
    let mut diags = Vec::new();
    clock::check(&f, &r, &mut diags);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn panic_fixture_fires_on_indexing_unwrap_and_expect() {
    let rel = "crates/net/src/codec.rs"; // indexing denied here
    let (f, r) = fixture("bad_panic.rs", rel);
    let mut diags = Vec::new();
    panic_free::check(&f, &r, &mut diags);
    assert!(diags.iter().all(|d| d.rule == Rule::Panic));
    assert_eq!(
        spans(&diags),
        vec![
            (rel.to_string(), 4),  // bytes[0]
            (rel.to_string(), 8),  // unwrap
            (rel.to_string(), 12), // expect
        ],
        "{diags:?}"
    );
}

#[test]
fn panic_fixture_is_silent_outside_panic_free_modules() {
    let (f, r) = fixture("bad_panic.rs", "crates/apps/src/lib.rs");
    let mut diags = Vec::new();
    panic_free::check(&f, &r, &mut diags);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn job_scope_fixture_fires_on_the_unscoped_variant() {
    let rel = "crates/net/src/message.rs";
    let (f, r) = fixture("bad_job_scope.rs", rel);
    let mut diags = Vec::new();
    job_scope::check(&f, &r, &mut diags);
    assert_eq!(spans(&diags), vec![(rel.to_string(), 5)], "{diags:?}");
    assert_eq!(diags[0].rule, Rule::JobScope);
    assert!(diags[0].message.contains("ControllerToWorker::Probe"));
}

#[test]
fn lock_order_fixture_reports_the_ab_ba_cycle() {
    let rel = "crates/x/src/state.rs";
    let (f, r) = fixture("bad_lock_order.rs", rel);
    let mut diags = Vec::new();
    let sites = locks::check(&[f], &[r], &mut diags);
    assert_eq!(sites, 4, "two locks acquired in each of two functions");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, Rule::LockOrder);
    assert_eq!((diags[0].file.as_str(), diags[0].line), (rel, 12));
    assert!(diags[0].message.contains("lock-order cycle"));
    assert!(diags[0].message.contains("x/a") && diags[0].message.contains("x/b"));
}

#[test]
fn waiver_fixture_reports_empty_reason_and_unused_waiver() {
    let rel = "crates/worker/src/worker.rs";
    let (f, r) = fixture("bad_waiver.rs", rel);
    let mut diags = Vec::new();
    apply_waivers(&[f], &[r], &mut diags);
    assert!(diags.iter().all(|d| d.rule == Rule::Waiver));
    assert_eq!(
        spans(&diags),
        vec![(rel.to_string(), 3), (rel.to_string(), 5)],
        "{diags:?}"
    );
    assert!(diags[0].message.contains("no reason"));
    assert!(diags[1].message.contains("unused waiver"));
}

// ---------------------------------------------------------------------------
// Wire-lint mutation tests against the REAL workspace sources: the lint must
// be clean as committed, and must fail if a TAGS entry or a vector file
// disappears.
// ---------------------------------------------------------------------------

struct RealWire {
    message: ScannedFile,
    stats: ScannedFile,
    vectors_rs: ScannedFile,
    vector_files: Vec<String>,
}

impl RealWire {
    fn load() -> Self {
        let root = config::find_root();
        let read = |rel: &str| {
            let raw = std::fs::read_to_string(root.join(rel))
                .unwrap_or_else(|e| panic!("cannot read {rel}: {e}"));
            ScannedFile::new(PathBuf::from(rel), raw)
        };
        let mut vector_files: Vec<String> = std::fs::read_dir(root.join(config::WIRE.vectors_dir))
            .expect("vector dir exists")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        vector_files.sort();
        Self {
            message: read(config::WIRE.message),
            stats: read(config::WIRE.stats),
            vectors_rs: read(config::WIRE.vectors_rs),
            vector_files,
        }
    }

    fn check(&self) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        wire::check(
            &wire::WireSources {
                message: &self.message,
                stats: &self.stats,
                vectors_rs: &self.vectors_rs,
                vector_files: self.vector_files.clone(),
            },
            &mut diags,
        );
        diags
    }
}

#[test]
fn wire_lint_is_clean_on_the_real_workspace() {
    let real = RealWire::load();
    let diags = real.check();
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn deleting_a_tags_entry_fails_the_wire_lint() {
    let mut real = RealWire::load();
    let mutated = real.stats.raw.replacen("    \"barrier\",\n", "", 1);
    assert_ne!(
        mutated, real.stats.raw,
        "fixture assumption: TAGS lists \"barrier\""
    );
    real.stats = ScannedFile::new(PathBuf::from(config::WIRE.stats), mutated);
    let diags = real.check();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == Rule::Wire && d.message.contains("barrier")),
        "dropping a TAGS entry must fail the wire lint: {diags:?}"
    );
}

#[test]
fn deleting_a_vector_file_fails_the_wire_lint() {
    let mut real = RealWire::load();
    let victim = real
        .vector_files
        .iter()
        .position(|f| f.starts_with("msg-"))
        .expect("fixture assumption: message vectors exist");
    let name = real.vector_files.remove(victim);
    let diags = real.check();
    assert!(
        !diags.is_empty(),
        "dropping vector file {name} must fail the wire lint"
    );
    assert!(diags.iter().all(|d| d.rule == Rule::Wire), "{diags:?}");
}
