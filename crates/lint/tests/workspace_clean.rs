//! The tier-1 gate: the committed workspace must pass every lint with zero
//! unwaived findings. This is the same pass `cargo run -p nimbus-lint` and
//! the CI `lint` job perform; running it under `cargo test` means a
//! protocol-, clock-, or locking-invariant regression fails the ordinary
//! test suite, not just a separately invoked binary.

use nimbus_lint::config;

#[test]
fn workspace_has_zero_unwaived_findings() {
    let root = config::find_root();
    let report = nimbus_lint::run(&root).expect("workspace scan succeeds");
    assert!(report.files_scanned > 50, "suspiciously few files scanned");
    assert!(
        report.lock_sites > 0,
        "the lock-order pass found no acquisition sites at all"
    );
    assert!(
        report.is_clean(),
        "unwaived lint findings:\n{}",
        report.render_table()
    );
}

#[test]
fn every_waiver_in_the_workspace_carries_a_reason() {
    let root = config::find_root();
    let report = nimbus_lint::run(&root).expect("workspace scan succeeds");
    for d in &report.diagnostics {
        if let Some(reason) = &d.waived {
            assert!(
                !reason.trim().is_empty(),
                "waived finding without a reason at {}",
                d.span()
            );
        }
    }
}
