//! Panic-freedom fixture: indexing, `unwrap`, and `expect` must all fire.

pub fn first_header_byte(bytes: &[u8]) -> u8 {
    bytes[0]
}

pub fn parse(input: Option<u32>) -> u32 {
    input.unwrap()
}

pub fn header(bytes: &[u8]) -> u8 {
    *bytes.first().expect("nonempty")
}
