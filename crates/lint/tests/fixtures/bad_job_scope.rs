//! Job-scoping fixture: `Probe` lacks a `job` field and must fire.

pub enum ControllerToWorker {
    Execute { job: JobId, task: u64 },
    Probe { worker: WorkerId },
}

pub enum WorkerToController {
    Done { job: JobId, task: u64 },
}
