//! Clock-discipline fixture: every wall-clock read below must fire.

use std::time::{Duration, Instant, SystemTime};

pub fn measure() -> Duration {
    let start = Instant::now();
    std::thread::sleep(Duration::from_millis(1));
    start.elapsed()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
