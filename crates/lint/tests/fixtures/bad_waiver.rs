//! Waiver fixture: an empty reason and an unused waiver must both fire.

pub fn noop() {} // nimbus-lint: allow(panic) —

// nimbus-lint: allow(clock) — nothing on the next line reads a clock
pub fn also_noop() {}
