//! Lock-order fixture: `ab` and `ba` acquire the two locks in opposite
//! orders — the classic AB/BA deadlock cycle the lint must report.

pub struct State {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl State {
    pub fn ab(&self) -> u32 {
        let ga = self.a.lock();
        let gb = self.b.lock();
        *ga + *gb
    }

    pub fn ba(&self) -> u32 {
        let gb = self.b.lock();
        let ga = self.a.lock();
        *ga + *gb
    }
}
