//! In-process transport: the cluster's default message fabric.
//!
//! A [`Network`] is a registry of node endpoints connected by unbounded
//! channels. It satisfies the two control-plane requirements from Section 3.1
//! that involve communication: workers exchange data directly (any endpoint
//! can send to any other endpoint without relaying through the controller)
//! and the controller is just another endpoint, not a router.
//!
//! An optional [`LatencyModel`] delays deliveries to emulate a datacenter
//! network; with latency disabled, channels deliver immediately, which is the
//! configuration used by unit tests and microbenchmarks.
//!
//! The [`TransportEndpoint`] trait abstracts one node's connection to *some*
//! fabric; [`Endpoint`] (this module) and [`crate::tcp::TcpEndpoint`] are the
//! two implementations. Nodes (controller, workers, driver) are generic over
//! it, so the same control-plane code runs in-process and across machines.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::message::{Envelope, Message, NodeId};
use crate::stats::{NetworkStats, SharedNetworkStats};

/// One node's connection to a message fabric.
///
/// Implementations must be cheap to move into the node's thread and safe to
/// share with it; sending is `&self` so a node can send while borrowed.
pub trait TransportEndpoint: Send + 'static {
    /// The node this endpoint belongs to.
    fn node(&self) -> NodeId;

    /// Sends a message to another node.
    fn send(&self, to: NodeId, message: Message) -> NetResult<()>;

    /// Sends several messages to the same node as one batch, preserving
    /// their order relative to each other and to surrounding [`send`]s.
    ///
    /// Fabrics that can exploit it deliver the whole batch with one flush —
    /// the TCP transport encodes a single batch frame and issues one
    /// `write(2)` for the lot, which also makes delivery all-or-nothing.
    /// The default just sends each message in turn, which is always
    /// semantically equivalent: batching is a transport optimization, never
    /// a message-visible construct. Note the sequential paths (the default
    /// impl, and the TCP fallback for batches too large for one frame) can
    /// fail after delivering a prefix; callers that must account delivered
    /// messages exactly should keep batches within one frame.
    ///
    /// [`send`]: TransportEndpoint::send
    fn send_many(&self, to: NodeId, messages: Vec<Message>) -> NetResult<()> {
        for message in messages {
            self.send(to, message)?;
        }
        Ok(())
    }

    /// Blocking receive.
    fn recv(&self) -> NetResult<Envelope>;

    /// Blocking receive with a timeout.
    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope>;

    /// Non-blocking receive.
    fn try_recv(&self) -> NetResult<Envelope>;

    /// Number of messages waiting in the inbox.
    fn pending(&self) -> usize;

    /// Drops every established outbound *data-plane* connection — streams to
    /// worker peers — plus any redial backoff for them, so the next transfer
    /// dials afresh. Workers call this on `Halt`: recovery can be
    /// readmitting a restarted peer whose old connection is a silent
    /// half-open socket. Control-plane streams (to the controller or the
    /// driver) are untouched — dropping them would read as this node dying.
    /// Fabrics without connections (the in-process network) need nothing.
    fn reset_worker_peers(&self) {}
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination node is not registered on the network.
    UnknownNode(String),
    /// The destination endpoint has been dropped.
    Disconnected(String),
    /// A blocking receive timed out.
    Timeout,
    /// The inbox is empty (non-blocking receive).
    Empty,
    /// A socket operation failed (TCP transport).
    Io(String),
    /// A message could not be encoded or decoded (TCP transport).
    Codec(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::Disconnected(n) => write!(f, "node {n} disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Empty => write!(f, "inbox empty"),
            NetError::Io(e) => write!(f, "transport io error: {e}"),
            NetError::Codec(e) => write!(f, "wire codec error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result alias for transport operations.
pub type NetResult<T> = Result<T, NetError>;

/// Delivery latency model applied to every message.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum LatencyModel {
    /// Deliver immediately (default; used by tests and microbenchmarks).
    #[default]
    None,
    /// Add a fixed one-way delay to every message.
    Fixed(Duration),
}

impl LatencyModel {
    fn delay(&self) -> Option<Duration> {
        match self {
            LatencyModel::None => None,
            LatencyModel::Fixed(d) if d.is_zero() => None,
            LatencyModel::Fixed(d) => Some(*d),
        }
    }
}

struct Delayed {
    due: Instant,
    seq: u64,
    envelope: Envelope,
    to: Sender<Envelope>,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so the binary heap pops the earliest deadline first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct DelayState {
    heap: BinaryHeap<Delayed>,
    // Shutdown lives under the same mutex the condvar waits on: checking it
    // in a separate lock would allow the wake-up notification to slip in
    // between the check and the wait, leaving drop blocked until the next
    // delivery deadline (up to the full configured latency).
    shutdown: bool,
}

#[derive(Default)]
struct DelayQueue {
    state: Mutex<DelayState>,
    cv: Condvar,
}

struct NetworkInner {
    senders: RwLock<HashMap<NodeId, Sender<Envelope>>>,
    stats: SharedNetworkStats,
    latency: LatencyModel,
    delay_queue: Arc<DelayQueue>,
    delayer: Mutex<Option<std::thread::JoinHandle<()>>>,
    seq: Mutex<u64>,
}

/// The in-process message fabric connecting driver, controller, and workers.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new(LatencyModel::None)
    }
}

impl Network {
    /// Creates a network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        let inner = Arc::new(NetworkInner {
            senders: RwLock::new(HashMap::new()),
            stats: SharedNetworkStats::new(),
            latency,
            delay_queue: Arc::new(DelayQueue::default()),
            delayer: Mutex::new(None),
            seq: Mutex::new(0),
        });
        let net = Self { inner };
        if latency.delay().is_some() {
            net.start_delayer();
        }
        net
    }

    fn start_delayer(&self) {
        let queue = Arc::clone(&self.inner.delay_queue);
        let handle = std::thread::Builder::new()
            .name("nimbus-net-delayer".to_string())
            .spawn(move || loop {
                let mut state = queue.state.lock();
                if state.shutdown {
                    return;
                }
                let now = Instant::now();
                match state.heap.peek() {
                    Some(d) if d.due <= now => {
                        let d = state.heap.pop().expect("peeked entry exists");
                        drop(state);
                        // A dropped receiver just means the node left; ignore.
                        let _ = d.to.send(d.envelope);
                    }
                    Some(d) => {
                        let wait = d.due - now;
                        queue.cv.wait_for(&mut state, wait);
                    }
                    None => {
                        queue.cv.wait(&mut state);
                    }
                }
            })
            .expect("spawn delayer thread");
        *self.inner.delayer.lock() = Some(handle);
    }

    /// Registers a node and returns its endpoint. Re-registering a node
    /// replaces its inbox (pending messages to the old inbox are dropped).
    pub fn register(&self, node: NodeId) -> Endpoint {
        let (tx, rx) = unbounded();
        self.inner.senders.write().insert(node, tx);
        Endpoint {
            node,
            receiver: rx,
            network: self.clone(),
        }
    }

    /// Removes a node from the network; subsequent sends to it fail.
    pub fn unregister(&self, node: NodeId) {
        self.inner.senders.write().remove(&node);
    }

    /// Injectable failure: severs `node` from the fabric the way a killed
    /// process severs a TCP peer. The node is unregistered (later sends to
    /// it fail, like dials to a dead address) and every *other* registered
    /// node receives a [`TransportEvent::PeerDisconnected`] notice in its
    /// inbox — which is exactly what the TCP transport injects when a peer's
    /// last inbound stream dies. This is what lets the kill/rejoin churn
    /// suite run on the in-process transport too; a subsequent
    /// [`Network::register`] of the same node plays the role of the
    /// restarted process.
    pub fn disconnect(&self, node: NodeId) {
        let peers: Vec<(NodeId, Sender<Envelope>)> = {
            let mut senders = self.inner.senders.write();
            senders.remove(&node);
            senders.iter().map(|(n, s)| (*n, s.clone())).collect()
        };
        for (peer, sender) in peers {
            let _ = sender.send(Envelope {
                from: node,
                to: peer,
                message: Message::Transport(crate::message::TransportEvent::PeerDisconnected(node)),
            });
        }
    }

    /// Returns true if the node is currently registered.
    pub fn is_registered(&self, node: NodeId) -> bool {
        self.inner.senders.read().contains_key(&node)
    }

    /// Sends a message from `from` to `to`.
    pub fn send(&self, from: NodeId, to: NodeId, message: Message) -> NetResult<()> {
        let sender = {
            let senders = self.inner.senders.read();
            senders
                .get(&to)
                .cloned()
                .ok_or_else(|| NetError::UnknownNode(to.to_string()))?
        };
        self.inner
            .stats
            .record(message.tag(), message.wire_size(), message.is_data());
        let envelope = Envelope { from, to, message };
        match self.inner.latency.delay() {
            None => sender
                .send(envelope)
                .map_err(|_| NetError::Disconnected(to.to_string())),
            Some(delay) => {
                let seq = {
                    let mut s = self.inner.seq.lock();
                    *s += 1;
                    *s
                };
                let mut state = self.inner.delay_queue.state.lock();
                state.heap.push(Delayed {
                    due: Instant::now() + delay,
                    seq,
                    envelope,
                    to: sender,
                });
                self.inner.delay_queue.cv.notify_one();
                Ok(())
            }
        }
    }

    /// Sends several messages from `from` to `to` as one batch. Delivery is
    /// still one envelope per message, in order (in-process channels have no
    /// framing to coalesce), but the batch is recorded in the batching
    /// counters so cross-transport comparisons line up.
    pub fn send_many(&self, from: NodeId, to: NodeId, messages: Vec<Message>) -> NetResult<()> {
        if messages.len() > 1 {
            self.inner.stats.record_batch(messages.len() as u64);
        }
        for message in messages {
            self.send(from, to, message)?;
        }
        Ok(())
    }

    /// Returns a snapshot of the traffic counters.
    pub fn stats(&self) -> NetworkStats {
        self.inner.stats.snapshot()
    }

    /// Returns the registered node count.
    pub fn node_count(&self) -> usize {
        self.inner.senders.read().len()
    }
}

impl Drop for NetworkInner {
    fn drop(&mut self) {
        self.delay_queue.state.lock().shutdown = true;
        self.delay_queue.cv.notify_all();
        if let Some(handle) = self.delayer.lock().take() {
            let _ = handle.join();
        }
    }
}

/// One node's connection to the network.
pub struct Endpoint {
    node: NodeId,
    receiver: Receiver<Envelope>,
    network: Network,
}

impl Endpoint {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends a message to another node.
    pub fn send(&self, to: NodeId, message: Message) -> NetResult<()> {
        self.network.send(self.node, to, message)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> NetResult<Envelope> {
        self.receiver.try_recv().map_err(|_| NetError::Empty)
    }

    /// Blocking receive.
    pub fn recv(&self) -> NetResult<Envelope> {
        self.receiver
            .recv()
            .map_err(|_| NetError::Disconnected(self.node.to_string()))
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        self.receiver
            .recv_timeout(timeout)
            .map_err(|_| NetError::Timeout)
    }

    /// Number of messages waiting in the inbox.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }

    /// The network this endpoint is attached to.
    pub fn network(&self) -> &Network {
        &self.network
    }
}

impl TransportEndpoint for Endpoint {
    fn node(&self) -> NodeId {
        Endpoint::node(self)
    }

    fn send(&self, to: NodeId, message: Message) -> NetResult<()> {
        Endpoint::send(self, to, message)
    }

    fn send_many(&self, to: NodeId, messages: Vec<Message>) -> NetResult<()> {
        self.network.send_many(self.node, to, messages)
    }

    fn recv(&self) -> NetResult<Envelope> {
        Endpoint::recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        Endpoint::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> NetResult<Envelope> {
        Endpoint::try_recv(self)
    }

    fn pending(&self) -> usize {
        Endpoint::pending(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{DriverMessage, Message};
    use nimbus_core::WorkerId;

    #[test]
    fn register_send_receive() {
        let net = Network::new(LatencyModel::None);
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        assert_eq!(net.node_count(), 2);

        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        let env = controller.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, NodeId::Driver);
        assert!(matches!(
            env.message,
            Message::Driver {
                msg: DriverMessage::Barrier,
                ..
            }
        ));
        assert_eq!(controller.pending(), 0);
    }

    #[test]
    fn unknown_destination_errors() {
        let net = Network::new(LatencyModel::None);
        let driver = net.register(NodeId::Driver);
        let err = driver
            .send(
                NodeId::Worker(WorkerId(9)),
                Message::driver0(DriverMessage::Barrier),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownNode(_)));
    }

    #[test]
    fn unregister_then_send_fails() {
        let net = Network::new(LatencyModel::None);
        let _w = net.register(NodeId::Worker(WorkerId(0)));
        let driver = net.register(NodeId::Driver);
        net.unregister(NodeId::Worker(WorkerId(0)));
        assert!(!net.is_registered(NodeId::Worker(WorkerId(0))));
        assert!(driver
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::driver0(DriverMessage::Barrier)
            )
            .is_err());
    }

    #[test]
    fn stats_count_messages() {
        let net = Network::new(LatencyModel::None);
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        for _ in 0..3 {
            driver
                .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
                .unwrap();
        }
        let stats = net.stats();
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.count("barrier"), 3);
        assert!(stats.control_bytes > 0);
        drop(controller);
    }

    #[test]
    fn fixed_latency_delays_delivery() {
        let net = Network::new(LatencyModel::Fixed(Duration::from_millis(20)));
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        let start = Instant::now();
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        // Should not be there immediately.
        assert!(controller.try_recv().is_err());
        let env = controller.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert!(matches!(
            env.message,
            Message::Driver {
                msg: DriverMessage::Barrier,
                ..
            }
        ));
    }

    #[test]
    fn latency_preserves_ordering_per_sender() {
        let net = Network::new(LatencyModel::Fixed(Duration::from_millis(5)));
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        for i in 0..10u64 {
            driver
                .send(
                    NodeId::Controller,
                    Message::driver0(DriverMessage::Checkpoint { marker: i }),
                )
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            let env = controller.recv_timeout(Duration::from_secs(1)).unwrap();
            if let Message::Driver {
                msg: DriverMessage::Checkpoint { marker },
                ..
            } = env.message
            {
                got.push(marker);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn drop_joins_delayer_even_with_pending_far_future_deliveries() {
        let net = Network::new(LatencyModel::Fixed(Duration::from_secs(30)));
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        let start = Instant::now();
        drop(driver);
        drop(controller);
        drop(net);
        // Without the shared-mutex shutdown flag the delayer would sleep out
        // the 30s delivery deadline before noticing shutdown.
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop blocked for {:?}",
            start.elapsed()
        );
        if cfg!(target_os = "linux") {
            let leaked = crate::diagnostics::wait_for_no_thread_with_prefix(
                "nimbus-net-dela",
                Duration::from_secs(5),
            );
            assert!(leaked.is_none(), "delayer thread leaked: {leaked:?}");
        }
    }

    #[test]
    fn timeout_on_empty_inbox() {
        let net = Network::new(LatencyModel::None);
        let controller = net.register(NodeId::Controller);
        assert!(matches!(
            controller.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
        assert!(matches!(controller.try_recv(), Err(NetError::Empty)));
    }
}
