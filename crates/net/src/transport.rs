//! In-process transport: the cluster's default message fabric.
//!
//! A [`Network`] is a registry of node endpoints connected by unbounded
//! channels. It satisfies the two control-plane requirements from Section 3.1
//! that involve communication: workers exchange data directly (any endpoint
//! can send to any other endpoint without relaying through the controller)
//! and the controller is just another endpoint, not a router.
//!
//! An optional [`LatencyModel`] delays deliveries to emulate a datacenter
//! network; with latency disabled, channels deliver immediately, which is the
//! configuration used by unit tests and microbenchmarks.
//!
//! The [`TransportEndpoint`] trait abstracts one node's connection to *some*
//! fabric; [`Endpoint`] (this module) and [`crate::tcp::TcpEndpoint`] are the
//! two implementations. Nodes (controller, workers, driver) are generic over
//! it, so the same control-plane code runs in-process and across machines.

use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::message::{Envelope, Message, NodeId};
use crate::stats::{NetworkStats, SharedNetworkStats};

/// How a hooked blocking receive should proceed after the scheduler's
/// decision (see [`DeliveryHook::on_empty_recv`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HookWake {
    /// A message was placed in the inbox; retry the receive.
    Delivered,
    /// The receive's timeout fired (virtually); return [`NetError::Timeout`].
    TimedOut,
    /// The node was severed from the fabric; return
    /// [`NetError::Disconnected`].
    Disconnected,
}

/// Interception points that hand all in-process delivery nondeterminism to an
/// external scheduler (the deterministic simulation harness in `nimbus-dst`).
///
/// When a hook is installed on a [`Network`]:
///
/// * every send is diverted to [`on_send`](DeliveryHook::on_send) instead of
///   the destination inbox — the hook owns the message until it chooses to
///   deliver it with [`Network::deliver_now`];
/// * a blocking receive that finds its inbox empty parks in
///   [`on_empty_recv`](DeliveryHook::on_empty_recv) until the scheduler
///   grants it a wake reason, instead of blocking on the channel (so wall
///   clocks and OS wakeup order never influence behavior);
/// * dropping an endpoint reports
///   [`on_node_exit`](DeliveryHook::on_node_exit), which is how the
///   scheduler learns a node's thread has finished.
///
/// The hook must be installed before any hooked traffic flows; it cannot be
/// removed. Latency models are ignored while a hook is installed — the
/// scheduler owns time.
pub trait DeliveryHook: Send + Sync + 'static {
    /// A message was sent. The hook now owns its delivery; `Ok(())` means
    /// "accepted" (possibly to be dropped later, e.g. for a severed sender).
    fn on_send(&self, envelope: Envelope) -> NetResult<()>;

    /// `node`'s blocking receive found an empty inbox. Blocks cooperatively
    /// until the scheduler picks an outcome. `timeout` is the receive's
    /// requested timeout (`None` for an untimed receive); the scheduler
    /// interprets it in virtual time.
    fn on_empty_recv(&self, node: NodeId, timeout: Option<Duration>) -> HookWake;

    /// `node`'s endpoint was dropped (its thread exited or released the
    /// fabric).
    fn on_node_exit(&self, node: NodeId);
}

/// One node's connection to a message fabric.
///
/// Implementations must be cheap to move into the node's thread and safe to
/// share with it; sending is `&self` so a node can send while borrowed.
pub trait TransportEndpoint: Send + 'static {
    /// The node this endpoint belongs to.
    fn node(&self) -> NodeId;

    /// Sends a message to another node.
    fn send(&self, to: NodeId, message: Message) -> NetResult<()>;

    /// Sends several messages to the same node as one batch, preserving
    /// their order relative to each other and to surrounding [`send`]s.
    ///
    /// Fabrics that can exploit it deliver the whole batch with one flush —
    /// the TCP transport encodes a single batch frame and issues one
    /// `write(2)` for the lot, which also makes delivery all-or-nothing.
    /// The default just sends each message in turn, which is always
    /// semantically equivalent: batching is a transport optimization, never
    /// a message-visible construct. Note the sequential paths (the default
    /// impl, and the TCP fallback for batches too large for one frame) can
    /// fail after delivering a prefix; callers that must account delivered
    /// messages exactly should keep batches within one frame.
    ///
    /// [`send`]: TransportEndpoint::send
    fn send_many(&self, to: NodeId, messages: Vec<Message>) -> NetResult<()> {
        for message in messages {
            self.send(to, message)?;
        }
        Ok(())
    }

    /// Blocking receive.
    fn recv(&self) -> NetResult<Envelope>;

    /// Blocking receive with a timeout.
    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope>;

    /// Non-blocking receive.
    fn try_recv(&self) -> NetResult<Envelope>;

    /// Number of messages waiting in the inbox.
    fn pending(&self) -> usize;

    /// Drops every established outbound *data-plane* connection — streams to
    /// worker peers — plus any redial backoff for them, so the next transfer
    /// dials afresh. Workers call this on `Halt`: recovery can be
    /// readmitting a restarted peer whose old connection is a silent
    /// half-open socket. Control-plane streams (to the controller or the
    /// driver) are untouched — dropping them would read as this node dying.
    /// Fabrics without connections (the in-process network) need nothing.
    fn reset_worker_peers(&self) {}
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination node is not registered on the network.
    UnknownNode(String),
    /// The destination endpoint has been dropped.
    Disconnected(String),
    /// A blocking receive timed out.
    Timeout,
    /// The inbox is empty (non-blocking receive).
    Empty,
    /// A socket operation failed (TCP transport).
    Io(String),
    /// A message could not be encoded or decoded (TCP transport).
    Codec(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::Disconnected(n) => write!(f, "node {n} disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Empty => write!(f, "inbox empty"),
            NetError::Io(e) => write!(f, "transport io error: {e}"),
            NetError::Codec(e) => write!(f, "wire codec error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result alias for transport operations.
pub type NetResult<T> = Result<T, NetError>;

/// Delivery latency model applied to every message.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum LatencyModel {
    /// Deliver immediately (default; used by tests and microbenchmarks).
    #[default]
    None,
    /// Add a fixed one-way delay to every message.
    Fixed(Duration),
}

impl LatencyModel {
    fn delay(&self) -> Option<Duration> {
        match self {
            LatencyModel::None => None,
            LatencyModel::Fixed(d) if d.is_zero() => None,
            LatencyModel::Fixed(d) => Some(*d),
        }
    }
}

struct Delayed {
    due: Instant,
    seq: u64,
    envelope: Envelope,
    to: Sender<Envelope>,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse so the binary heap pops the earliest deadline first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct DelayState {
    heap: BinaryHeap<Delayed>,
    // Shutdown lives under the same mutex the condvar waits on: checking it
    // in a separate lock would allow the wake-up notification to slip in
    // between the check and the wait, leaving drop blocked until the next
    // delivery deadline (up to the full configured latency).
    shutdown: bool,
}

#[derive(Default)]
struct DelayQueue {
    state: Mutex<DelayState>,
    cv: Condvar,
}

struct NetworkInner {
    senders: RwLock<HashMap<NodeId, Sender<Envelope>>>,
    stats: SharedNetworkStats,
    latency: LatencyModel,
    delay_queue: Arc<DelayQueue>,
    delayer: Mutex<Option<std::thread::JoinHandle<()>>>,
    seq: Mutex<u64>,
    /// Virtual-time latency: delayed deliveries drain synchronously in
    /// `(due, seq)` order instead of waiting out wall-clock time on the
    /// delayer thread. Ordering across senders is identical to the real
    /// delayer's (a fixed delay preserves send order); only the waiting is
    /// elided.
    virtual_time: bool,
    /// Simulation hook; set at most once, before traffic flows.
    hook: OnceLock<Arc<dyn DeliveryHook>>,
}

/// The in-process message fabric connecting driver, controller, and workers.
#[derive(Clone)]
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new(LatencyModel::None)
    }
}

impl Network {
    /// Creates a network with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        Self::build(latency, false)
    }

    /// Creates a network whose latency model runs on *virtual* time: delayed
    /// deliveries keep their `(due, seq)` order but drain without consuming
    /// wall-clock time, and no delayer thread is spawned. For tests that
    /// care about latency-model *ordering*, not elapsed time.
    pub fn new_virtual_time(latency: LatencyModel) -> Self {
        Self::build(latency, true)
    }

    fn build(latency: LatencyModel, virtual_time: bool) -> Self {
        let inner = Arc::new(NetworkInner {
            senders: RwLock::new(HashMap::new()),
            stats: SharedNetworkStats::new(),
            latency,
            delay_queue: Arc::new(DelayQueue::default()),
            delayer: Mutex::new(None),
            seq: Mutex::new(0),
            virtual_time,
            hook: OnceLock::new(),
        });
        let net = Self { inner };
        if latency.delay().is_some() && !virtual_time {
            net.start_delayer();
        }
        net
    }

    /// Installs a [`DeliveryHook`] that takes ownership of all delivery
    /// nondeterminism. Must be called before any traffic flows; panics if a
    /// hook is already installed.
    pub fn install_delivery_hook(&self, hook: Arc<dyn DeliveryHook>) {
        if self.inner.hook.set(hook).is_err() {
            panic!("delivery hook already installed");
        }
    }

    fn hook(&self) -> Option<&Arc<dyn DeliveryHook>> {
        self.inner.hook.get()
    }

    /// Delivers an envelope straight into the destination inbox, bypassing
    /// hook and latency. This is the delivery half of a [`DeliveryHook`]:
    /// the scheduler calls it when it decides an intercepted message's turn
    /// has come. Returns `false` if the destination is no longer registered
    /// or its inbox was dropped (the message is discarded, exactly like a
    /// packet in flight to a dead peer).
    pub fn deliver_now(&self, envelope: Envelope) -> bool {
        let sender = {
            let senders = self.inner.senders.read();
            senders.get(&envelope.to).cloned()
        };
        match sender {
            Some(s) => s.send(envelope).is_ok(),
            None => false,
        }
    }

    /// The currently registered nodes, sorted. Scheduler convenience.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut ns: Vec<NodeId> = self.inner.senders.read().keys().copied().collect();
        ns.sort_unstable();
        ns
    }

    fn start_delayer(&self) {
        let queue = Arc::clone(&self.inner.delay_queue);
        let handle = std::thread::Builder::new()
            .name("nimbus-net-delayer".to_string())
            .spawn(move || loop {
                let mut state = queue.state.lock();
                if state.shutdown {
                    return;
                }
                // Virtual-time networks drain the queue inline, so the delayer
                // thread only ever runs against real wall time.
                // nimbus-lint: allow(clock) — delayer thread is real-time only
                let now = Instant::now();
                match state.heap.peek() {
                    Some(d) if d.due <= now => {
                        let d = state.heap.pop().expect("peeked entry exists");
                        drop(state);
                        // A dropped receiver just means the node left; ignore.
                        let _ = d.to.send(d.envelope);
                    }
                    Some(d) => {
                        let wait = d.due - now;
                        queue.cv.wait_for(&mut state, wait);
                    }
                    None => {
                        queue.cv.wait(&mut state);
                    }
                }
            })
            .expect("spawn delayer thread");
        *self.inner.delayer.lock() = Some(handle);
    }

    /// Registers a node and returns its endpoint. Re-registering a node
    /// replaces its inbox (pending messages to the old inbox are dropped).
    pub fn register(&self, node: NodeId) -> Endpoint {
        let (tx, rx) = unbounded();
        self.inner.senders.write().insert(node, tx);
        Endpoint {
            node,
            receiver: rx,
            network: self.clone(),
        }
    }

    /// Removes a node from the network; subsequent sends to it fail.
    pub fn unregister(&self, node: NodeId) {
        self.inner.senders.write().remove(&node);
    }

    /// Injectable failure: severs `node` from the fabric the way a killed
    /// process severs a TCP peer. The node is unregistered (later sends to
    /// it fail, like dials to a dead address) and every *other* registered
    /// node receives a [`TransportEvent::PeerDisconnected`] notice in its
    /// inbox — which is exactly what the TCP transport injects when a peer's
    /// last inbound stream dies. This is what lets the kill/rejoin churn
    /// suite run on the in-process transport too; a subsequent
    /// [`Network::register`] of the same node plays the role of the
    /// restarted process.
    pub fn disconnect(&self, node: NodeId) {
        let peers: Vec<(NodeId, Sender<Envelope>)> = {
            let mut senders = self.inner.senders.write();
            senders.remove(&node);
            senders.iter().map(|(n, s)| (*n, s.clone())).collect()
        };
        for (peer, sender) in peers {
            let envelope = Envelope {
                from: node,
                to: peer,
                message: Message::Transport(crate::message::TransportEvent::PeerDisconnected(node)),
            };
            // Under a simulation hook the disconnect notices are ordinary
            // schedulable messages — the scheduler decides when each peer
            // observes the death, which is exactly the race surface the
            // harness explores.
            if let Some(hook) = self.hook() {
                let _ = hook.on_send(envelope);
            } else {
                let _ = sender.send(envelope);
            }
        }
    }

    /// Returns true if the node is currently registered.
    pub fn is_registered(&self, node: NodeId) -> bool {
        self.inner.senders.read().contains_key(&node)
    }

    /// Sends a message from `from` to `to`.
    pub fn send(&self, from: NodeId, to: NodeId, message: Message) -> NetResult<()> {
        let sender = {
            let senders = self.inner.senders.read();
            senders
                .get(&to)
                .cloned()
                .ok_or_else(|| NetError::UnknownNode(to.to_string()))?
        };
        self.inner
            .stats
            .record(message.tag(), message.wire_size(), message.is_data());
        let envelope = Envelope { from, to, message };
        if let Some(hook) = self.hook() {
            // The scheduler owns delivery (and time) from here.
            return hook.on_send(envelope);
        }
        match self.inner.latency.delay() {
            None => sender
                .send(envelope)
                .map_err(|_| NetError::Disconnected(to.to_string())),
            Some(delay) => {
                let seq = {
                    let mut s = self.inner.seq.lock();
                    *s += 1;
                    *s
                };
                let mut state = self.inner.delay_queue.state.lock();
                state.heap.push(Delayed {
                    // Under virtual time the heap is drained immediately below.
                    // nimbus-lint: allow(clock) — real-time delivery due date
                    due: Instant::now() + delay,
                    seq,
                    envelope,
                    to: sender,
                });
                if self.inner.virtual_time {
                    // Virtual time: everything queued is already "due".
                    // Draining in heap order preserves the real delayer's
                    // (due, seq) delivery order without the wall-clock wait.
                    while let Some(d) = state.heap.pop() {
                        let _ = d.to.send(d.envelope);
                    }
                } else {
                    self.inner.delay_queue.cv.notify_one();
                }
                Ok(())
            }
        }
    }

    /// Sends several messages from `from` to `to` as one batch. Delivery is
    /// still one envelope per message, in order (in-process channels have no
    /// framing to coalesce), but the batch is recorded in the batching
    /// counters so cross-transport comparisons line up.
    pub fn send_many(&self, from: NodeId, to: NodeId, messages: Vec<Message>) -> NetResult<()> {
        if messages.len() > 1 {
            self.inner.stats.record_batch(messages.len() as u64);
        }
        for message in messages {
            self.send(from, to, message)?;
        }
        Ok(())
    }

    /// Returns a snapshot of the traffic counters.
    pub fn stats(&self) -> NetworkStats {
        self.inner.stats.snapshot()
    }

    /// Returns the registered node count.
    pub fn node_count(&self) -> usize {
        self.inner.senders.read().len()
    }
}

impl Drop for NetworkInner {
    fn drop(&mut self) {
        self.delay_queue.state.lock().shutdown = true;
        self.delay_queue.cv.notify_all();
        if let Some(handle) = self.delayer.lock().take() {
            let _ = handle.join();
        }
    }
}

/// One node's connection to the network.
pub struct Endpoint {
    node: NodeId,
    receiver: Receiver<Envelope>,
    network: Network,
}

impl Endpoint {
    /// The node this endpoint belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends a message to another node.
    pub fn send(&self, to: NodeId, message: Message) -> NetResult<()> {
        self.network.send(self.node, to, message)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> NetResult<Envelope> {
        self.receiver.try_recv().map_err(|_| NetError::Empty)
    }

    /// Blocking receive.
    pub fn recv(&self) -> NetResult<Envelope> {
        if let Some(hook) = self.network.hook() {
            return self.hooked_recv(hook, None);
        }
        self.receiver
            .recv()
            .map_err(|_| NetError::Disconnected(self.node.to_string()))
    }

    /// Blocking receive with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        if let Some(hook) = self.network.hook() {
            return self.hooked_recv(hook, Some(timeout));
        }
        self.receiver
            .recv_timeout(timeout)
            .map_err(|_| NetError::Timeout)
    }

    /// Blocking receive under a simulation hook: park in the scheduler when
    /// the inbox is empty and act on its grant. The loop re-checks the inbox
    /// after every `Delivered` grant, so a delivery the scheduler pushed with
    /// [`Network::deliver_now`] is picked up without touching the channel's
    /// own blocking machinery.
    fn hooked_recv(
        &self,
        hook: &Arc<dyn DeliveryHook>,
        timeout: Option<Duration>,
    ) -> NetResult<Envelope> {
        loop {
            if let Ok(envelope) = self.receiver.try_recv() {
                return Ok(envelope);
            }
            match hook.on_empty_recv(self.node, timeout) {
                HookWake::Delivered => continue,
                HookWake::TimedOut => return Err(NetError::Timeout),
                HookWake::Disconnected => {
                    return Err(NetError::Disconnected(self.node.to_string()))
                }
            }
        }
    }

    /// Number of messages waiting in the inbox.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }

    /// The network this endpoint is attached to.
    pub fn network(&self) -> &Network {
        &self.network
    }
}

impl Drop for Endpoint {
    fn drop(&mut self) {
        // Under a simulation hook, an endpoint dropping is how the scheduler
        // learns the node's thread is done (clean exit or kill-switch death).
        if let Some(hook) = self.network.hook() {
            hook.on_node_exit(self.node);
        }
    }
}

impl TransportEndpoint for Endpoint {
    fn node(&self) -> NodeId {
        Endpoint::node(self)
    }

    fn send(&self, to: NodeId, message: Message) -> NetResult<()> {
        Endpoint::send(self, to, message)
    }

    fn send_many(&self, to: NodeId, messages: Vec<Message>) -> NetResult<()> {
        self.network.send_many(self.node, to, messages)
    }

    fn recv(&self) -> NetResult<Envelope> {
        Endpoint::recv(self)
    }

    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        Endpoint::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> NetResult<Envelope> {
        Endpoint::try_recv(self)
    }

    fn pending(&self) -> usize {
        Endpoint::pending(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{DriverMessage, Message};
    use nimbus_core::WorkerId;

    #[test]
    fn register_send_receive() {
        let net = Network::new(LatencyModel::None);
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        assert_eq!(net.node_count(), 2);

        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        let env = controller.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(env.from, NodeId::Driver);
        assert!(matches!(
            env.message,
            Message::Driver {
                msg: DriverMessage::Barrier,
                ..
            }
        ));
        assert_eq!(controller.pending(), 0);
    }

    #[test]
    fn unknown_destination_errors() {
        let net = Network::new(LatencyModel::None);
        let driver = net.register(NodeId::Driver);
        let err = driver
            .send(
                NodeId::Worker(WorkerId(9)),
                Message::driver0(DriverMessage::Barrier),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownNode(_)));
    }

    #[test]
    fn unregister_then_send_fails() {
        let net = Network::new(LatencyModel::None);
        let _w = net.register(NodeId::Worker(WorkerId(0)));
        let driver = net.register(NodeId::Driver);
        net.unregister(NodeId::Worker(WorkerId(0)));
        assert!(!net.is_registered(NodeId::Worker(WorkerId(0))));
        assert!(driver
            .send(
                NodeId::Worker(WorkerId(0)),
                Message::driver0(DriverMessage::Barrier)
            )
            .is_err());
    }

    #[test]
    fn stats_count_messages() {
        let net = Network::new(LatencyModel::None);
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        for _ in 0..3 {
            driver
                .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
                .unwrap();
        }
        let stats = net.stats();
        assert_eq!(stats.messages, 3);
        assert_eq!(stats.count("barrier"), 3);
        assert!(stats.control_bytes > 0);
        drop(controller);
    }

    #[test]
    fn fixed_latency_delays_delivery() {
        let net = Network::new(LatencyModel::Fixed(Duration::from_millis(20)));
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        // nimbus-lint: allow(clock) — this test verifies real wall-clock delay.
        let start = Instant::now();
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        // Should not be there immediately.
        assert!(controller.try_recv().is_err());
        let env = controller.recv_timeout(Duration::from_secs(1)).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(15));
        assert!(matches!(
            env.message,
            Message::Driver {
                msg: DriverMessage::Barrier,
                ..
            }
        ));
    }

    #[test]
    fn latency_preserves_ordering_per_sender() {
        // Ordering-only property: run the latency model on virtual time so
        // this test never sleeps real milliseconds (and cannot flake under
        // load). `fixed_latency_delays_delivery` still covers the wall-clock
        // behavior.
        // nimbus-lint: allow(clock) — asserts virtual time burns no real time.
        let start = Instant::now();
        let net = Network::new_virtual_time(LatencyModel::Fixed(Duration::from_millis(5)));
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        for i in 0..10u64 {
            driver
                .send(
                    NodeId::Controller,
                    Message::driver0(DriverMessage::Checkpoint { marker: i }),
                )
                .unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..10 {
            let env = controller.recv_timeout(Duration::from_secs(1)).unwrap();
            if let Message::Driver {
                msg: DriverMessage::Checkpoint { marker },
                ..
            } = env.message
            {
                got.push(marker);
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        // 10 messages x 5ms would be at least 5ms wall time if any wait were
        // real; virtual time should deliver effectively instantly.
        assert!(
            start.elapsed() < Duration::from_millis(5),
            "virtual-time latency consumed real time: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn virtual_time_latency_spawns_no_delayer_thread() {
        let net = Network::new_virtual_time(LatencyModel::Fixed(Duration::from_secs(30)));
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        // A 30s fixed delay delivers immediately under virtual time.
        assert!(controller.try_recv().is_ok());
        // nimbus-lint: allow(clock) — asserts drop does not block on real time.
        let start = Instant::now();
        drop(driver);
        drop(controller);
        drop(net);
        assert!(start.elapsed() < Duration::from_secs(1));
    }

    struct CapturingHook {
        captured: Mutex<Vec<Envelope>>,
        exits: Mutex<Vec<NodeId>>,
    }

    impl DeliveryHook for CapturingHook {
        fn on_send(&self, envelope: Envelope) -> NetResult<()> {
            self.captured.lock().push(envelope);
            Ok(())
        }
        fn on_empty_recv(&self, _node: NodeId, _timeout: Option<Duration>) -> HookWake {
            HookWake::TimedOut
        }
        fn on_node_exit(&self, node: NodeId) {
            self.exits.lock().push(node);
        }
    }

    #[test]
    fn delivery_hook_intercepts_sends_and_recvs() {
        let net = Network::new(LatencyModel::None);
        let hook = Arc::new(CapturingHook {
            captured: Mutex::new(Vec::new()),
            exits: Mutex::new(Vec::new()),
        });
        net.install_delivery_hook(hook.clone());
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);

        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        // The message went to the hook, not the inbox.
        assert_eq!(controller.pending(), 0);
        assert_eq!(hook.captured.lock().len(), 1);

        // An empty blocking receive consults the hook (which grants a
        // virtual timeout here; no real waiting happens).
        // nimbus-lint: allow(clock) — asserts the hook grant avoids real waits.
        let start = Instant::now();
        assert!(matches!(
            controller.recv_timeout(Duration::from_secs(60)),
            Err(NetError::Timeout)
        ));
        assert!(start.elapsed() < Duration::from_secs(1));

        // The scheduler can deliver a captured message directly.
        let envelope = hook.captured.lock().pop().unwrap();
        assert!(net.deliver_now(envelope));
        assert!(controller.try_recv().is_ok());

        // Dropping an endpoint reports the exit.
        drop(driver);
        assert_eq!(hook.exits.lock().as_slice(), &[NodeId::Driver]);
    }

    #[test]
    fn drop_joins_delayer_even_with_pending_far_future_deliveries() {
        let net = Network::new(LatencyModel::Fixed(Duration::from_secs(30)));
        let controller = net.register(NodeId::Controller);
        let driver = net.register(NodeId::Driver);
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        // nimbus-lint: allow(clock) — asserts shutdown beats the 30 s delay.
        let start = Instant::now();
        drop(driver);
        drop(controller);
        drop(net);
        // Without the shared-mutex shutdown flag the delayer would sleep out
        // the 30s delivery deadline before noticing shutdown.
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop blocked for {:?}",
            start.elapsed()
        );
        if cfg!(target_os = "linux") {
            let leaked = crate::diagnostics::wait_for_no_thread_with_prefix(
                "nimbus-net-dela",
                Duration::from_secs(5),
            );
            assert!(leaked.is_none(), "delayer thread leaked: {leaked:?}");
        }
    }

    #[test]
    fn timeout_on_empty_inbox() {
        let net = Network::new(LatencyModel::None);
        let controller = net.register(NodeId::Controller);
        assert!(matches!(
            controller.recv_timeout(Duration::from_millis(10)),
            Err(NetError::Timeout)
        ));
        assert!(matches!(controller.try_recv(), Err(NetError::Empty)));
    }
}
