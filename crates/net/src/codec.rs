//! The compact binary wire codec and its byte-accounting twin.
//!
//! The evaluation attributes bytes to the control plane with
//! [`serialized_size`], a counting serializer that models a compact binary
//! encoding (fixed-width little-endian integers, length-prefixed sequences
//! and strings, one byte per enum discriminant) without allocating buffers on
//! the control-plane hot path.
//!
//! [`encode`] and [`decode`] are the *real* codec over the same data model
//! and the same layout, used by the TCP transport. Because the encoder and
//! the counter walk the identical `Serialize` structure and add the identical
//! byte widths, `encode(m)?.len() == serialized_size(&m)` holds by
//! construction — the property tests in `tests/roundtrip.rs` pin this.
//!
//! Wire layout, per serde data-model shape:
//!
//! | shape                  | bytes                                        |
//! |------------------------|----------------------------------------------|
//! | `bool`                 | 1 (`0`/`1`)                                  |
//! | `iN`/`uN`/`fN`         | N/8, little endian                           |
//! | `char`                 | 4 (the scalar value, LE)                     |
//! | `str` / `bytes`        | 4-byte LE length + contents                  |
//! | `None` / `Some(v)`     | 1 tag byte (+ `v`)                           |
//! | unit (struct)          | 0                                            |
//! | enum variant           | 1 discriminant byte + payload                |
//! | seq / map              | 4-byte LE element/entry count + contents     |
//! | tuple / struct         | fields in declaration order, no framing      |

use serde::de::{self, Deserialize, Deserializer};
use serde::ser::{self, Serialize};

/// Returns the number of bytes `value` occupies in the wire encoding.
pub fn serialized_size<T: Serialize + ?Sized>(value: &T) -> usize {
    let mut counter = ByteCounter { bytes: 0 };
    // Counting cannot fail: every serializer method only adds to the counter.
    value
        .serialize(&mut counter)
        // nimbus-lint: allow(panic) — every ByteCounter method is infallible
        .expect("byte counting serializer never fails");
    counter.bytes
}

/// Encodes `value` into the compact binary wire format.
pub fn encode<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut buf = Vec::new();
    encode_into(value, &mut buf)?;
    Ok(buf)
}

/// Appends the encoding of `value` to `buf` without clearing it, reserving
/// exactly the needed capacity up front (the counting serializer and the
/// encoder share one layout, so [`serialized_size`] is an exact
/// reservation, not a guess). This is the allocation-free hot path: a caller
/// that clears and reuses one buffer per connection encodes every
/// steady-state message with zero allocations once the buffer has grown to
/// its working size.
pub fn encode_into<T: Serialize + ?Sized>(value: &T, buf: &mut Vec<u8>) -> Result<(), CodecError> {
    buf.reserve(serialized_size(value));
    let mut encoder = Encoder { buf };
    value.serialize(&mut encoder)
}

/// Encodes `value` prefixed with its 4-byte little-endian payload length —
/// the TCP transport's frame layout — in a single buffer, so large payloads
/// are not copied a second time just to prepend the header.
pub fn encode_framed<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut buf = Vec::new();
    encode_framed_into(value, &mut buf)?;
    Ok(buf)
}

/// Appends a length-prefixed frame containing `value` to `buf` (the
/// buffer-reuse twin of [`encode_framed`]): 4 placeholder header bytes are
/// appended, the payload is encoded in place, and the header is patched with
/// the payload length. Returns the payload length in bytes.
pub fn encode_framed_into<T: Serialize + ?Sized>(
    value: &T,
    buf: &mut Vec<u8>,
) -> Result<usize, CodecError> {
    let start = buf.len();
    buf.reserve(4 + serialized_size(value));
    buf.extend_from_slice(&[0u8; 4]);
    let mut encoder = Encoder { buf };
    value.serialize(&mut encoder)?;
    let payload_len = buf.len() - start - 4;
    let len = u32::try_from(payload_len)
        .map_err(|_| CodecError("frame payload length exceeds u32".to_string()))?;
    // nimbus-lint: allow(panic) — patches the 4 header bytes appended above
    buf[start..start + 4].copy_from_slice(&len.to_le_bytes());
    Ok(payload_len)
}

/// Decodes a value from the compact binary wire format. The input must be
/// exactly one encoded value: trailing bytes are rejected, as is any
/// truncated or malformed prefix.
pub fn decode<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut decoder = Decoder { bytes, pos: 0 };
    let value = T::deserialize(&mut decoder)?;
    if decoder.pos != bytes.len() {
        return Err(CodecError(format!(
            "{} trailing bytes after decoded value",
            bytes.len() - decoder.pos
        )));
    }
    Ok(value)
}

/// Error produced by the codec: unencodable values (oversized lengths,
/// enums with more than 255 variants) on the encode side, malformed or
/// truncated input on the decode side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    /// Crate-internal constructor for framing-level errors that share this
    /// error type.
    pub(crate) fn msg(message: impl Into<String>) -> Self {
        CodecError(message.into())
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

/// Error type required by the `Serializer` trait; counting never fails.
#[derive(Debug)]
pub struct CountError(String);

impl std::fmt::Display for CountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CountError {}

impl ser::Error for CountError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CountError(msg.to_string())
    }
}

struct ByteCounter {
    bytes: usize,
}

impl ByteCounter {
    fn add(&mut self, n: usize) {
        self.bytes += n;
    }
}

macro_rules! count_fixed {
    ($name:ident, $ty:ty, $n:expr) => {
        fn $name(self, _v: $ty) -> Result<(), CountError> {
            self.add($n);
            Ok(())
        }
    };
}

impl<'a> ser::Serializer for &'a mut ByteCounter {
    type Ok = ();
    type Error = CountError;
    type SerializeSeq = &'a mut ByteCounter;
    type SerializeTuple = &'a mut ByteCounter;
    type SerializeTupleStruct = &'a mut ByteCounter;
    type SerializeTupleVariant = &'a mut ByteCounter;
    type SerializeMap = &'a mut ByteCounter;
    type SerializeStruct = &'a mut ByteCounter;
    type SerializeStructVariant = &'a mut ByteCounter;

    count_fixed!(serialize_bool, bool, 1);
    count_fixed!(serialize_i8, i8, 1);
    count_fixed!(serialize_i16, i16, 2);
    count_fixed!(serialize_i32, i32, 4);
    count_fixed!(serialize_i64, i64, 8);
    count_fixed!(serialize_u8, u8, 1);
    count_fixed!(serialize_u16, u16, 2);
    count_fixed!(serialize_u32, u32, 4);
    count_fixed!(serialize_u64, u64, 8);
    count_fixed!(serialize_f32, f32, 4);
    count_fixed!(serialize_f64, f64, 8);
    count_fixed!(serialize_char, char, 4);

    fn serialize_str(self, v: &str) -> Result<(), CountError> {
        self.add(4 + v.len());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CountError> {
        self.add(4 + v.len());
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CountError> {
        self.add(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CountError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CountError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        self.add(1);
        value.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, CountError> {
        self.add(4);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, CountError> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, CountError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, CountError> {
        self.add(1);
        Ok(self)
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, CountError> {
        self.add(4);
        Ok(self)
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, CountError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, CountError> {
        self.add(1);
        Ok(self)
    }
}

impl ser::SerializeSeq for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CountError> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Encoder: the writing twin of ByteCounter.
// ---------------------------------------------------------------------------

struct Encoder<'a> {
    buf: &'a mut Vec<u8>,
}

impl Encoder<'_> {
    fn put_len(&mut self, len: usize, what: &str) -> Result<(), CodecError> {
        let len = u32::try_from(len)
            .map_err(|_| CodecError(format!("{what} length {len} exceeds u32")))?;
        self.buf.extend_from_slice(&len.to_le_bytes());
        Ok(())
    }

    fn put_variant(&mut self, index: u32) -> Result<(), CodecError> {
        let tag = u8::try_from(index)
            .map_err(|_| CodecError(format!("variant index {index} exceeds one byte")))?;
        self.buf.push(tag);
        Ok(())
    }
}

macro_rules! encode_fixed {
    ($name:ident, $ty:ty) => {
        fn $name(self, v: $ty) -> Result<(), CodecError> {
            self.buf.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl<'a, 'b> ser::Serializer for &'a mut Encoder<'b> {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = &'a mut Encoder<'b>;
    type SerializeTuple = &'a mut Encoder<'b>;
    type SerializeTupleStruct = &'a mut Encoder<'b>;
    type SerializeTupleVariant = &'a mut Encoder<'b>;
    type SerializeMap = &'a mut Encoder<'b>;
    type SerializeStruct = &'a mut Encoder<'b>;
    type SerializeStructVariant = &'a mut Encoder<'b>;

    encode_fixed!(serialize_i8, i8);
    encode_fixed!(serialize_i16, i16);
    encode_fixed!(serialize_i32, i32);
    encode_fixed!(serialize_i64, i64);
    encode_fixed!(serialize_u8, u8);
    encode_fixed!(serialize_u16, u16);
    encode_fixed!(serialize_u32, u32);
    encode_fixed!(serialize_u64, u64);
    encode_fixed!(serialize_f32, f32);
    encode_fixed!(serialize_f64, f64);

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.buf.push(u8::from(v));
        Ok(())
    }

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.buf.extend_from_slice(&(v as u32).to_le_bytes());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len(), "string")?;
        self.buf.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len(), "byte buffer")?;
        self.buf.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.buf.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.buf.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.put_variant(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.put_variant(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, CodecError> {
        let len = len.ok_or_else(|| CodecError("sequences must be length-prefixed".to_string()))?;
        self.put_len(len, "sequence")?;
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, CodecError> {
        self.put_variant(variant_index)?;
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, CodecError> {
        let len = len.ok_or_else(|| CodecError("maps must be length-prefixed".to_string()))?;
        self.put_len(len, "map")?;
        Ok(self)
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, CodecError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, CodecError> {
        self.put_variant(variant_index)?;
        Ok(self)
    }
}

impl ser::SerializeSeq for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder<'_> {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoder: bounds-checked positional reads over a byte slice.
// ---------------------------------------------------------------------------

struct Decoder<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl<'b> Decoder<'b> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], CodecError> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.bytes.get(self.pos..end))
            .ok_or_else(|| {
                CodecError(format!(
                    "truncated input: need {n} bytes at offset {}, {} remain",
                    self.pos,
                    self.remaining()
                ))
            })?;
        self.pos += n;
        Ok(slice)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        self.take(N)?
            .try_into()
            .map_err(|_| CodecError("internal: take() returned a wrong-sized slice".to_string()))
    }

    /// Reads a 4-byte length prefix, rejecting lengths that cannot possibly
    /// fit in the remaining input (each element occupies at least
    /// `min_element_bytes`). This bounds work on malformed frames.
    fn take_len(&mut self, min_element_bytes: usize, what: &str) -> Result<usize, CodecError> {
        let len = u32::from_le_bytes(self.take_array::<4>()?) as usize;
        if len.saturating_mul(min_element_bytes) > self.remaining() {
            return Err(CodecError(format!(
                "{what} length {len} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }
}

macro_rules! decode_fixed {
    ($name:ident, $ty:ty, $n:expr) => {
        fn $name(&mut self) -> Result<$ty, CodecError> {
            Ok(<$ty>::from_le_bytes(self.take_array::<$n>()?))
        }
    };
}

impl<'de> Deserializer<'de> for Decoder<'_> {
    type Error = CodecError;

    decode_fixed!(read_i8, i8, 1);
    decode_fixed!(read_i16, i16, 2);
    decode_fixed!(read_i32, i32, 4);
    decode_fixed!(read_i64, i64, 8);
    decode_fixed!(read_u8, u8, 1);
    decode_fixed!(read_u16, u16, 2);
    decode_fixed!(read_u32, u32, 4);
    decode_fixed!(read_u64, u64, 8);
    decode_fixed!(read_f32, f32, 4);
    decode_fixed!(read_f64, f64, 8);

    fn read_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_array::<1>()?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError(format!("invalid bool byte {other:#04x}"))),
        }
    }

    fn read_char(&mut self) -> Result<char, CodecError> {
        let scalar = u32::from_le_bytes(self.take_array::<4>()?);
        char::from_u32(scalar).ok_or_else(|| CodecError(format!("invalid char scalar {scalar:#x}")))
    }

    fn read_string(&mut self) -> Result<String, CodecError> {
        let len = self.take_len(1, "string")?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError(format!("invalid UTF-8 in string: {e}")))
    }

    fn read_byte_buf(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.take_len(1, "byte buffer")?;
        Ok(self.take(len)?.to_vec())
    }

    fn read_option_tag(&mut self) -> Result<bool, CodecError> {
        match self.take_array::<1>()?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError(format!("invalid option tag {other:#04x}"))),
        }
    }

    fn read_seq_len(&mut self) -> Result<usize, CodecError> {
        // Elements of zero serialized size do not occur in this workspace's
        // message types, so requiring one byte per element is a safe bound.
        self.take_len(1, "sequence")
    }

    fn read_map_len(&mut self) -> Result<usize, CodecError> {
        self.take_len(2, "map")
    }

    fn read_variant_tag(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from(self.take_array::<1>()?[0]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Serialize)]
    struct Small {
        a: u32,
        b: bool,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Payload { values: Vec<u64>, label: String },
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Wire {
        id: u64,
        label: String,
        values: Vec<f64>,
        flag: Option<bool>,
        pair: (u32, i16),
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum WireKind {
        Empty,
        One(u32),
        Named { x: i64, tags: Vec<String> },
    }

    fn sample_wire() -> Wire {
        Wire {
            id: 42,
            label: "control-plane".to_string(),
            values: vec![1.5, -2.25, 0.0],
            flag: Some(true),
            pair: (7, -3),
        }
    }

    #[test]
    fn primitives_have_fixed_sizes() {
        assert_eq!(serialized_size(&7u64), 8);
        assert_eq!(serialized_size(&7u32), 4);
        assert_eq!(serialized_size(&true), 1);
        assert_eq!(serialized_size(&1.5f64), 8);
    }

    #[test]
    fn struct_size_is_sum_of_fields() {
        assert_eq!(serialized_size(&Small { a: 1, b: false }), 5);
    }

    #[test]
    fn sequences_and_strings_are_length_prefixed() {
        assert_eq!(serialized_size(&vec![1u64, 2, 3]), 4 + 24);
        assert_eq!(serialized_size("abc"), 4 + 3);
        assert_eq!(serialized_size(&Some(1u64)), 9);
        assert_eq!(serialized_size(&Option::<u64>::None), 1);
    }

    #[test]
    fn enum_variants_add_a_discriminant_byte() {
        assert_eq!(serialized_size(&Kind::Unit), 1);
        let k = Kind::Payload {
            values: vec![1, 2],
            label: "x".to_string(),
        };
        assert_eq!(serialized_size(&k), 1 + 4 + 16 + 4 + 1);
    }

    #[test]
    fn core_types_serialize() {
        let cmd = nimbus_core::Command::new(
            nimbus_core::CommandId(1),
            nimbus_core::CommandKind::DestroyData {
                object: nimbus_core::PhysicalObjectId(4),
            },
        );
        assert!(serialized_size(&cmd) > 8);
    }

    #[test]
    fn encode_matches_serialized_size() {
        let w = sample_wire();
        assert_eq!(encode(&w).unwrap().len(), serialized_size(&w));
        let k = WireKind::Named {
            x: -9,
            tags: vec!["a".to_string(), "bb".to_string()],
        };
        assert_eq!(encode(&k).unwrap().len(), serialized_size(&k));
    }

    #[test]
    fn struct_and_enum_roundtrip() {
        let w = sample_wire();
        assert_eq!(decode::<Wire>(&encode(&w).unwrap()).unwrap(), w);
        for k in [
            WireKind::Empty,
            WireKind::One(3),
            WireKind::Named {
                x: i64::MIN,
                tags: vec!["ß∂ƒ".to_string()],
            },
        ] {
            assert_eq!(decode::<WireKind>(&encode(&k).unwrap()).unwrap(), k);
        }
    }

    #[test]
    fn core_command_roundtrips() {
        let cmd = nimbus_core::Command::new(
            nimbus_core::CommandId(9),
            nimbus_core::CommandKind::SaveData {
                object: nimbus_core::PhysicalObjectId(4),
                key: "ckpt/1/2/3".to_string(),
            },
        )
        .with_before(vec![nimbus_core::CommandId(5)]);
        let bytes = encode(&cmd).unwrap();
        assert_eq!(bytes.len(), serialized_size(&cmd));
        assert_eq!(decode::<nimbus_core::Command>(&bytes).unwrap(), cmd);
    }

    #[test]
    fn truncated_input_is_rejected_not_panicking() {
        let w = sample_wire();
        let bytes = encode(&w).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                decode::<Wire>(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn encode_framed_is_encode_with_a_length_header() {
        let w = sample_wire();
        let plain = encode(&w).unwrap();
        let framed = encode_framed(&w).unwrap();
        assert_eq!(&framed[..4], (plain.len() as u32).to_le_bytes());
        assert_eq!(&framed[4..], plain);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode(&7u64).unwrap();
        bytes.push(0);
        assert!(decode::<u64>(&bytes).is_err());
    }

    #[test]
    fn garbage_is_rejected_not_panicking() {
        // Invalid variant tag.
        assert!(decode::<WireKind>(&[200]).is_err());
        // Sequence length far beyond the remaining input.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&8u64.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes()); // claims 4-byte string "xxxx"
        bytes.extend_from_slice(&[0xff, 0xfe, 0x00, 0x01]);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd vec length
        assert!(decode::<Wire>(&bytes).is_err());
        // Invalid UTF-8 string contents.
        let mut s = Vec::new();
        s.extend_from_slice(&2u32.to_le_bytes());
        s.extend_from_slice(&[0xff, 0xff]);
        assert!(decode::<String>(&s).is_err());
        // Invalid bool / option tags.
        assert!(decode::<bool>(&[7]).is_err());
        assert!(decode::<Option<u8>>(&[9, 0]).is_err());
    }
}
