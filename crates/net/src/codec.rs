//! Wire-size accounting codec.
//!
//! The evaluation attributes bytes to the control plane without requiring an
//! actual wire format: [`serialized_size`] runs any [`serde::Serialize`]
//! value through a counting serializer that models a compact binary encoding
//! (fixed-width integers, length-prefixed sequences and strings, one byte per
//! enum discriminant). This is the same accounting a real codec would
//! produce, without allocating buffers on the control-plane hot path.

use serde::ser::{self, Serialize};

/// Returns the number of bytes `value` would occupy in a compact binary
/// encoding.
pub fn serialized_size<T: Serialize + ?Sized>(value: &T) -> usize {
    let mut counter = ByteCounter { bytes: 0 };
    // Counting cannot fail: every serializer method only adds to the counter.
    value
        .serialize(&mut counter)
        .expect("byte counting serializer never fails");
    counter.bytes
}

/// Error type required by the `Serializer` trait; counting never fails.
#[derive(Debug)]
pub struct CountError(String);

impl std::fmt::Display for CountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CountError {}

impl ser::Error for CountError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        CountError(msg.to_string())
    }
}

struct ByteCounter {
    bytes: usize,
}

impl ByteCounter {
    fn add(&mut self, n: usize) {
        self.bytes += n;
    }
}

macro_rules! count_fixed {
    ($name:ident, $ty:ty, $n:expr) => {
        fn $name(self, _v: $ty) -> Result<(), CountError> {
            self.add($n);
            Ok(())
        }
    };
}

impl<'a> ser::Serializer for &'a mut ByteCounter {
    type Ok = ();
    type Error = CountError;
    type SerializeSeq = &'a mut ByteCounter;
    type SerializeTuple = &'a mut ByteCounter;
    type SerializeTupleStruct = &'a mut ByteCounter;
    type SerializeTupleVariant = &'a mut ByteCounter;
    type SerializeMap = &'a mut ByteCounter;
    type SerializeStruct = &'a mut ByteCounter;
    type SerializeStructVariant = &'a mut ByteCounter;

    count_fixed!(serialize_bool, bool, 1);
    count_fixed!(serialize_i8, i8, 1);
    count_fixed!(serialize_i16, i16, 2);
    count_fixed!(serialize_i32, i32, 4);
    count_fixed!(serialize_i64, i64, 8);
    count_fixed!(serialize_u8, u8, 1);
    count_fixed!(serialize_u16, u16, 2);
    count_fixed!(serialize_u32, u32, 4);
    count_fixed!(serialize_u64, u64, 8);
    count_fixed!(serialize_f32, f32, 4);
    count_fixed!(serialize_f64, f64, 8);
    count_fixed!(serialize_char, char, 4);

    fn serialize_str(self, v: &str) -> Result<(), CountError> {
        self.add(4 + v.len());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CountError> {
        self.add(4 + v.len());
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CountError> {
        self.add(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CountError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CountError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        self.add(1);
        value.serialize(self)
    }

    fn serialize_seq(self, _len: Option<usize>) -> Result<Self::SerializeSeq, CountError> {
        self.add(4);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self::SerializeTuple, CountError> {
        Ok(self)
    }

    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleStruct, CountError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeTupleVariant, CountError> {
        self.add(1);
        Ok(self)
    }

    fn serialize_map(self, _len: Option<usize>) -> Result<Self::SerializeMap, CountError> {
        self.add(4);
        Ok(self)
    }

    fn serialize_struct(
        self,
        _name: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStruct, CountError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self::SerializeStructVariant, CountError> {
        self.add(1);
        Ok(self)
    }
}

impl ser::SerializeSeq for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CountError> {
        key.serialize(&mut **self)
    }

    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Small {
        a: u32,
        b: bool,
    }

    #[derive(Serialize)]
    enum Kind {
        Unit,
        Payload { values: Vec<u64>, label: String },
    }

    #[test]
    fn primitives_have_fixed_sizes() {
        assert_eq!(serialized_size(&7u64), 8);
        assert_eq!(serialized_size(&7u32), 4);
        assert_eq!(serialized_size(&true), 1);
        assert_eq!(serialized_size(&1.5f64), 8);
    }

    #[test]
    fn struct_size_is_sum_of_fields() {
        assert_eq!(serialized_size(&Small { a: 1, b: false }), 5);
    }

    #[test]
    fn sequences_and_strings_are_length_prefixed() {
        assert_eq!(serialized_size(&vec![1u64, 2, 3]), 4 + 24);
        assert_eq!(serialized_size("abc"), 4 + 3);
        assert_eq!(serialized_size(&Some(1u64)), 9);
        assert_eq!(serialized_size(&Option::<u64>::None), 1);
    }

    #[test]
    fn enum_variants_add_a_discriminant_byte() {
        assert_eq!(serialized_size(&Kind::Unit), 1);
        let k = Kind::Payload {
            values: vec![1, 2],
            label: "x".to_string(),
        };
        assert_eq!(serialized_size(&k), 1 + 4 + 16 + 4 + 1);
    }

    #[test]
    fn core_types_serialize() {
        let cmd = nimbus_core::Command::new(
            nimbus_core::CommandId(1),
            nimbus_core::CommandKind::DestroyData {
                object: nimbus_core::PhysicalObjectId(4),
            },
        );
        assert!(serialized_size(&cmd) > 8);
    }
}
