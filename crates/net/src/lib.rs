//! # nimbus-net
//!
//! Message types, wire-size accounting, and the in-process transport used by
//! the Nimbus control plane and data plane.
//!
//! The transport exposes one [`Endpoint`] per node (driver, controller, each
//! worker). Any endpoint can send to any other, which is what allows workers
//! to exchange data directly instead of relaying through the controller — a
//! requirement for execution templates (paper Section 3.1). Traffic is
//! accounted per message tag and split into control-plane and data-plane
//! bytes so the evaluation can attribute overheads precisely.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod diagnostics;
pub mod framing;
pub mod message;
pub mod payload;
pub mod stats;
pub mod tcp;
pub mod transport;

pub use codec::{decode, encode, encode_into, serialized_size, CodecError};
pub use message::{
    ControllerToDriver, ControllerToWorker, DataTransfer, DriverMessage, Envelope, JobVersions,
    Message, NodeId, PartitionVersion, TransportEvent, WorkerToController,
};
pub use payload::DataPayload;
pub use stats::{NetworkStats, SharedNetworkStats};
pub use tcp::{DialPolicy, TcpEndpoint, TcpFabric};
pub use transport::{
    DeliveryHook, Endpoint, HookWake, LatencyModel, NetError, NetResult, Network, TransportEndpoint,
};
