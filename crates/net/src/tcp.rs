//! TCP transport: length-prefix-framed envelopes over loopback or LAN
//! sockets.
//!
//! Every node owns one listening socket (its address in the fabric's
//! [`TcpFabric`] map) and dials peers lazily on first send, so any node can
//! send to any other directly — the same full-mesh property the in-process
//! [`crate::Network`] provides, which workers rely on for direct data
//! exchange (paper Section 3.1). Connections are unidirectional: an accepted
//! stream is only read, a dialed stream is only written.
//!
//! Framing is a 4-byte little-endian payload length followed by one
//! [`Envelope`] in the compact binary codec ([`crate::codec`]). Frames
//! larger than [`MAX_FRAME`] and frames that fail to decode are treated as a
//! malformed peer: the connection is dropped without panicking and the rest
//! of the fabric keeps working.
//!
//! This is a reconnect-free v1: once an established stream dies the peer is
//! reported via [`TransportEvent::PeerDisconnected`] and subsequent sends to
//! it fail. Initial dials do retry briefly so multi-process clusters can
//! start their processes in any order.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::codec;
use crate::message::{Envelope, Message, NodeId, TransportEvent};
use crate::stats::NetworkStats;
use crate::transport::{NetError, NetResult, TransportEndpoint};

/// Maximum accepted frame payload size. Anything larger is treated as a
/// malformed peer and the connection is dropped.
pub const MAX_FRAME: usize = 64 << 20;

/// How long the accept loop and frame reads sleep/poll between shutdown
/// checks; bounds how long dropping an endpoint can take.
const POLL_INTERVAL: Duration = Duration::from_millis(20);

/// How long a first dial to a peer retries before giving up. Lets
/// multi-process clusters start controller and workers in any order.
const DIAL_RETRY_WINDOW: Duration = Duration::from_secs(10);

/// The address book of a TCP cluster plus any pre-bound listeners.
///
/// Two construction modes:
/// * [`TcpFabric::bind_loopback`] — single-process clusters: binds an
///   OS-assigned loopback port per node up front, so the full address map is
///   known before any endpoint starts.
/// * [`TcpFabric::from_addrs`] — multi-process clusters: every process is
///   given the same externally chosen address map and binds only its own
///   node's listener.
pub struct TcpFabric {
    addrs: HashMap<NodeId, SocketAddr>,
    prebound: Mutex<HashMap<NodeId, TcpListener>>,
    stats: Arc<Mutex<NetworkStats>>,
}

impl TcpFabric {
    /// Binds one loopback listener per node and records the assigned ports.
    pub fn bind_loopback(nodes: &[NodeId]) -> NetResult<Self> {
        let mut addrs = HashMap::new();
        let mut prebound = HashMap::new();
        for node in nodes {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
            addrs.insert(*node, listener.local_addr().map_err(io_err)?);
            prebound.insert(*node, listener);
        }
        Ok(Self {
            addrs,
            prebound: Mutex::new(prebound),
            stats: Arc::new(Mutex::new(NetworkStats::new())),
        })
    }

    /// Builds a fabric from an externally chosen address map.
    pub fn from_addrs(addrs: HashMap<NodeId, SocketAddr>) -> Self {
        Self {
            addrs,
            prebound: Mutex::new(HashMap::new()),
            stats: Arc::new(Mutex::new(NetworkStats::new())),
        }
    }

    /// The address of a node, if it is part of the fabric.
    pub fn addr(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.get(&node).copied()
    }

    /// Creates the endpoint for `node`, binding its listener (or taking the
    /// pre-bound one from [`TcpFabric::bind_loopback`]).
    pub fn endpoint(&self, node: NodeId) -> NetResult<TcpEndpoint> {
        let listener = match self.prebound.lock().remove(&node) {
            Some(l) => l,
            None => {
                let addr = self
                    .addrs
                    .get(&node)
                    .ok_or_else(|| NetError::UnknownNode(node.to_string()))?;
                TcpListener::bind(addr).map_err(io_err)?
            }
        };
        TcpEndpoint::start(node, self.addrs.clone(), listener, Arc::clone(&self.stats))
    }

    /// Snapshot of the traffic recorded by every endpoint created from this
    /// fabric (meaningful for single-process clusters; each process of a
    /// multi-process cluster sees only its own endpoints' sends).
    pub fn stats(&self) -> NetworkStats {
        self.stats.lock().clone()
    }
}

fn io_err(e: std::io::Error) -> NetError {
    NetError::Io(e.to_string())
}

struct Shared {
    node: NodeId,
    addrs: HashMap<NodeId, SocketAddr>,
    /// Write halves, one dialed stream per peer.
    writers: Mutex<HashMap<NodeId, Arc<Mutex<TcpStream>>>>,
    /// Peers whose established stream already failed: reconnect-free v1
    /// refuses to dial them again, so sends fail fast and deterministically.
    dead_peers: Mutex<Vec<NodeId>>,
    inbox_tx: Sender<Envelope>,
    stats: Arc<Mutex<NetworkStats>>,
    shutdown: AtomicBool,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// One node's connection to a TCP fabric. See the module docs for the
/// threading model: one accept thread plus one reader thread per inbound
/// peer connection, all joined on drop.
pub struct TcpEndpoint {
    shared: Arc<Shared>,
    inbox: Receiver<Envelope>,
    accept_thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl TcpEndpoint {
    fn start(
        node: NodeId,
        addrs: HashMap<NodeId, SocketAddr>,
        listener: TcpListener,
        stats: Arc<Mutex<NetworkStats>>,
    ) -> NetResult<Self> {
        let local_addr = listener.local_addr().map_err(io_err)?;
        listener.set_nonblocking(true).map_err(io_err)?;
        let (inbox_tx, inbox) = unbounded();
        let shared = Arc::new(Shared {
            node,
            addrs,
            writers: Mutex::new(HashMap::new()),
            dead_peers: Mutex::new(Vec::new()),
            inbox_tx,
            stats,
            shutdown: AtomicBool::new(false),
            reader_threads: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("nimbus-tcp-accept-{node}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(io_err)?;
        Ok(Self {
            shared,
            inbox,
            accept_thread: Some(accept_thread),
            local_addr,
        })
    }

    /// The address this endpoint's listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the traffic counters shared with the fabric.
    pub fn stats(&self) -> NetworkStats {
        self.shared.stats.lock().clone()
    }

    fn writer_for(&self, to: NodeId) -> NetResult<Arc<Mutex<TcpStream>>> {
        if let Some(w) = self.shared.writers.lock().get(&to) {
            return Ok(Arc::clone(w));
        }
        if self.shared.dead_peers.lock().contains(&to) {
            return Err(NetError::Disconnected(to.to_string()));
        }
        let addr = self
            .shared
            .addrs
            .get(&to)
            .copied()
            .ok_or_else(|| NetError::UnknownNode(to.to_string()))?;
        let deadline = Instant::now() + DIAL_RETRY_WINDOW;
        let stream = loop {
            match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
                Ok(s) => break s,
                Err(e) => {
                    if self.shared.shutdown.load(Ordering::Relaxed) || Instant::now() >= deadline {
                        // A peer that never answered within the retry window
                        // counts as dead too: later sends (halts, shutdown
                        // broadcasts) must fail fast, not re-block the
                        // caller for another full window each.
                        self.shared.dead_peers.lock().push(to);
                        return Err(io_err(e));
                    }
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
        };
        stream.set_nodelay(true).ok();
        let stream = Arc::new(Mutex::new(stream));
        // A concurrent send may have dialed the same peer; keep the first.
        let mut writers = self.shared.writers.lock();
        Ok(Arc::clone(
            writers.entry(to).or_insert_with(|| Arc::clone(&stream)),
        ))
    }
}

impl TransportEndpoint for TcpEndpoint {
    fn node(&self) -> NodeId {
        self.shared.node
    }

    fn send(&self, to: NodeId, message: Message) -> NetResult<()> {
        // Traffic accounting mirrors the in-process fabric: the inner
        // message's counted size, recorded only once the send succeeded —
        // retries against a dead peer must not inflate the counters the
        // cross-transport comparisons rely on.
        let (tag, wire_size, is_data) = (message.tag(), message.wire_size(), message.is_data());
        let record = |shared: &Shared| {
            shared.stats.lock().record(tag, wire_size, is_data);
        };
        let envelope = Envelope {
            from: self.shared.node,
            to,
            message,
        };
        if to == self.shared.node {
            self.shared
                .inbox_tx
                .send(envelope)
                .map_err(|_| NetError::Disconnected(to.to_string()))?;
            record(&self.shared);
            return Ok(());
        }
        // One buffer, one write: the frame header is patched into the front
        // of the encode buffer (no second payload copy), and with
        // TCP_NODELAY a separate header write would flush as its own
        // segment, doubling the per-message cost.
        let frame = codec::encode_framed(&envelope).map_err(|e| NetError::Codec(e.to_string()))?;
        if frame.len() - 4 > MAX_FRAME {
            return Err(NetError::Codec(format!(
                "frame of {} bytes exceeds MAX_FRAME",
                frame.len() - 4
            )));
        }
        let writer = self.writer_for(to)?;
        let mut stream = writer.lock();
        let result = stream.write_all(&frame);
        drop(stream);
        if result.is_err() {
            // Reconnect-free v1: the peer is gone for good.
            self.shared.writers.lock().remove(&to);
            self.shared.dead_peers.lock().push(to);
            return Err(NetError::Disconnected(to.to_string()));
        }
        record(&self.shared);
        Ok(())
    }

    fn recv(&self) -> NetResult<Envelope> {
        self.inbox
            .recv()
            .map_err(|_| NetError::Disconnected(self.shared.node.to_string()))
    }

    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        self.inbox
            .recv_timeout(timeout)
            .map_err(|_| NetError::Timeout)
    }

    fn try_recv(&self) -> NetResult<Envelope> {
        self.inbox.try_recv().map_err(|_| NetError::Empty)
    }

    fn pending(&self) -> usize {
        self.inbox.len()
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Closing write halves lets peers' readers observe EOF promptly.
        self.shared.writers.lock().clear();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let readers = std::mem::take(&mut *self.shared.reader_threads.lock());
        for handle in readers {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nodelay(true).ok();
                if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
                    continue;
                }
                let reader_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("nimbus-tcp-read-{}", shared.node))
                    .spawn(move || reader_loop(stream, reader_shared));
                if let Ok(handle) = spawned {
                    let mut threads = shared.reader_threads.lock();
                    // Reap finished readers so short-lived connections (a
                    // malformed peer, a port probe) don't accumulate
                    // join handles for the life of the endpoint.
                    threads.retain(|t| !t.is_finished());
                    threads.push(handle);
                }
            }
            // Transient failures (ECONNABORTED: peer reset before accept;
            // EMFILE: momentary fd exhaustion) must not kill the accept
            // thread — that would silently make the node unreachable for
            // every future dial. Back off and keep accepting; shutdown is
            // the only exit.
            Err(_) => {
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// Reads frames off one inbound connection until EOF, error, or shutdown.
/// The first envelope identifies the peer; if the stream then dies, a
/// [`TransportEvent::PeerDisconnected`] notice is injected into the inbox so
/// the node can react (the controller treats a lost worker as a failure).
fn reader_loop(mut stream: TcpStream, shared: Arc<Shared>) {
    let mut peer: Option<NodeId> = None;
    loop {
        match read_frame(&mut stream, &shared) {
            Ok(Some(payload)) => match codec::decode::<Envelope>(&payload) {
                // Transport events are generated locally, never sent: a
                // peer that puts one on the wire is forging connectivity
                // notices (e.g. a fake PeerDisconnected(Controller) would
                // shut a worker down). Treat it as a malformed peer.
                Ok(envelope) if matches!(envelope.message, Message::Transport(_)) => break,
                Ok(envelope) => {
                    peer = Some(envelope.from);
                    if shared.inbox_tx.send(envelope).is_err() {
                        return; // Endpoint dropped.
                    }
                }
                Err(_) => break, // Malformed peer: drop the connection.
            },
            Ok(None) => return, // Shutdown requested.
            Err(_) => break,    // EOF or transport error.
        }
    }
    if shared.shutdown.load(Ordering::Relaxed) {
        return;
    }
    if let Some(peer) = peer {
        let _ = shared.inbox_tx.send(Envelope {
            from: peer,
            to: shared.node,
            message: Message::Transport(TransportEvent::PeerDisconnected(peer)),
        });
    }
}

/// Reads one length-prefixed frame. Returns `Ok(None)` when shutdown was
/// requested mid-read, `Err` on EOF, oversized frames, or IO errors.
fn read_frame(stream: &mut TcpStream, shared: &Shared) -> std::io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    if read_full(stream, &mut header, shared)?.is_none() {
        return Ok(None);
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    if read_full(stream, &mut payload, shared)?.is_none() {
        return Ok(None);
    }
    Ok(Some(payload))
}

/// `read_exact` that keeps checking the shutdown flag across read timeouts.
/// Returns `Ok(None)` when shutdown was requested.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
) -> std::io::Result<Option<()>> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ControllerToDriver, DriverMessage};
    use nimbus_core::WorkerId;

    fn loopback_pair() -> (TcpEndpoint, TcpEndpoint) {
        let fabric = TcpFabric::bind_loopback(&[NodeId::Driver, NodeId::Controller]).unwrap();
        (
            fabric.endpoint(NodeId::Driver).unwrap(),
            fabric.endpoint(NodeId::Controller).unwrap(),
        )
    }

    #[test]
    fn send_and_receive_over_loopback() {
        let (driver, controller) = loopback_pair();
        driver
            .send(NodeId::Controller, Message::Driver(DriverMessage::Barrier))
            .unwrap();
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from, NodeId::Driver);
        assert_eq!(env.to, NodeId::Controller);
        assert_eq!(env.message, Message::Driver(DriverMessage::Barrier));

        controller
            .send(
                NodeId::Driver,
                Message::ToDriver(ControllerToDriver::BarrierReached),
            )
            .unwrap();
        let env = driver.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            env.message,
            Message::ToDriver(ControllerToDriver::BarrierReached)
        );
    }

    #[test]
    fn messages_from_one_sender_arrive_in_order() {
        let (driver, controller) = loopback_pair();
        for i in 0..100u64 {
            driver
                .send(
                    NodeId::Controller,
                    Message::Driver(DriverMessage::Checkpoint { marker: i }),
                )
                .unwrap();
        }
        for i in 0..100u64 {
            let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(
                env.message,
                Message::Driver(DriverMessage::Checkpoint { marker: i })
            );
        }
    }

    #[test]
    fn unknown_peer_is_rejected() {
        let (driver, _controller) = loopback_pair();
        let err = driver
            .send(
                NodeId::Worker(WorkerId(7)),
                Message::Driver(DriverMessage::Barrier),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownNode(_)), "{err}");
    }

    #[test]
    fn peer_drop_is_reported_and_sends_fail() {
        let (driver, controller) = loopback_pair();
        driver
            .send(NodeId::Controller, Message::Driver(DriverMessage::Barrier))
            .unwrap();
        controller.recv_timeout(Duration::from_secs(5)).unwrap();
        drop(driver);
        // The controller's reader observes EOF and reports the driver gone.
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            env.message,
            Message::Transport(TransportEvent::PeerDisconnected(NodeId::Driver))
        );
    }

    #[test]
    fn garbage_frames_do_not_panic_or_wedge_the_endpoint() {
        let (driver, controller) = loopback_pair();
        // A raw connection spraying garbage: bogus oversized header.
        let mut raw = TcpStream::connect(controller.local_addr()).unwrap();
        raw.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        raw.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        // A second raw connection with a well-sized frame of undecodable bytes.
        let mut raw2 = TcpStream::connect(controller.local_addr()).unwrap();
        raw2.write_all(&4u32.to_le_bytes()).unwrap();
        raw2.write_all(&[0xff, 0xff, 0xff, 0xff]).unwrap();
        raw2.flush().unwrap();
        // Legitimate traffic still flows.
        driver
            .send(NodeId::Controller, Message::Driver(DriverMessage::Barrier))
            .unwrap();
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.message, Message::Driver(DriverMessage::Barrier));
        // And the garbage never surfaced as an envelope.
        assert!(controller.try_recv().is_err());
    }

    #[test]
    fn data_payloads_cross_as_bytes() {
        use crate::message::DataTransfer;
        use crate::payload::DataPayload;
        use nimbus_core::appdata::VecF64;
        use nimbus_core::TransferId;

        let w0 = NodeId::Worker(WorkerId(0));
        let w1 = NodeId::Worker(WorkerId(1));
        let fabric = TcpFabric::bind_loopback(&[w0, w1]).unwrap();
        let a = fabric.endpoint(w0).unwrap();
        let b = fabric.endpoint(w1).unwrap();
        a.send(
            w1,
            Message::Data(DataTransfer {
                transfer: TransferId(3),
                from_worker: WorkerId(0),
                payload: DataPayload::Object(Box::new(VecF64::new(vec![1.0, -2.5]))),
            }),
        )
        .unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        let Message::Data(transfer) = env.message else {
            panic!("expected data transfer, got {:?}", env.message);
        };
        assert_eq!(transfer.transfer, TransferId(3));
        let DataPayload::Bytes(bytes) = transfer.payload else {
            panic!("expected bytes payload");
        };
        let mut decoded = VecF64::default();
        nimbus_core::appdata::AppData::decode_wire(&mut decoded, bytes.as_slice()).unwrap();
        assert_eq!(decoded.values, vec![1.0, -2.5]);
    }

    #[test]
    fn drop_joins_all_transport_threads() {
        let (driver, controller) = loopback_pair();
        driver
            .send(NodeId::Controller, Message::Driver(DriverMessage::Barrier))
            .unwrap();
        controller.recv_timeout(Duration::from_secs(5)).unwrap();
        drop(driver);
        drop(controller);
        if cfg!(target_os = "linux") {
            let leaked = crate::diagnostics::wait_for_no_thread_with_prefix(
                "nimbus-tcp",
                Duration::from_secs(5),
            );
            assert!(leaked.is_none(), "transport threads leaked: {leaked:?}");
        }
    }
}
