//! TCP transport: length-prefix-framed envelopes over loopback or LAN
//! sockets.
//!
//! Every node owns one listening socket (its address in the fabric's
//! [`TcpFabric`] map) and dials peers lazily on first send, so any node can
//! send to any other directly — the same full-mesh property the in-process
//! [`crate::Network`] provides, which workers rely on for direct data
//! exchange (paper Section 3.1). Connections are unidirectional: an accepted
//! stream is only read, a dialed stream is only written.
//!
//! Framing is a 4-byte little-endian payload length followed by one
//! [`Envelope`] in the compact binary codec ([`crate::codec`]); a header
//! with the high bit set marks a *batch frame* carrying several envelopes
//! back to back (see [`crate::framing`]). Frames larger than [`MAX_FRAME`]
//! and frames that fail to decode are treated as a malformed peer: the
//! connection is dropped without panicking and the rest of the fabric keeps
//! working.
//!
//! Writers are *corked*: each peer owns one reusable encode buffer, a
//! message is encoded straight into it (zero steady-state allocations), and
//! a batched send ([`TransportEndpoint::send_many`]) coalesces every queued
//! message into one buffer flushed with a single `write(2)` — instead of
//! one encode allocation, one lock round-trip, and one syscall per message.
//! The per-`write(2)` counter in the shared stats pins this behavior in
//! tests.
//!
//! Streams are *supervised*: a dead established stream marks the peer as
//! down with a bounded exponential redial backoff instead of killing it
//! forever, and a dial that exhausts its startup retry window becomes
//! retriable the same way. The receive side reports connectivity through
//! [`TransportEvent::PeerDisconnected`] when a peer's last inbound stream
//! dies and [`TransportEvent::PeerReconnected`] when a previously lost peer
//! delivers traffic again — which is what lets the controller drive the
//! rejoin handshake for restarted workers without replanning the job.
//!
//! The accept loop blocks in `accept(2)` (woken by a self-connect at
//! shutdown) and readers block in `read(2)` (unblocked by `shutdown(2)` on
//! their streams at drop), so an idle cluster burns no CPU polling and a
//! message is delivered as soon as the kernel has it, not on the next tick
//! of a poll interval.

use std::collections::{HashMap, HashSet};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Mutex, RwLock};

use crate::codec;
use crate::framing::{self, BATCH_FLAG};
use crate::message::{Envelope, Message, NodeId, TransportEvent};
use crate::stats::{NetworkStats, SharedNetworkStats};
use crate::transport::{NetError, NetResult, TransportEndpoint};

pub use crate::framing::MAX_FRAME;

/// Pause between attempts while a *first* dial waits out the startup window.
const DIAL_PAUSE: Duration = Duration::from_millis(20);

/// Back-off applied by the accept loop after a transient `accept` error.
const ACCEPT_ERROR_PAUSE: Duration = Duration::from_millis(20);

/// Timing knobs of the supervised dialing policy.
///
/// A peer that has never been reached gets a patient initial window (so the
/// processes of a cluster can start in any order); a peer whose stream died
/// gets quick redials under exponential backoff, bounded so sends to a peer
/// that is genuinely gone keep failing fast instead of blocking the caller.
#[derive(Clone, Copy, Debug)]
pub struct DialPolicy {
    /// How long a first dial to a never-reached peer retries before the peer
    /// is marked down.
    pub retry_window: Duration,
    /// Backoff before the first redial of a down peer.
    pub initial_backoff: Duration,
    /// Upper bound of the exponential redial backoff.
    pub max_backoff: Duration,
    /// Per-attempt connect timeout for redials.
    pub connect_timeout: Duration,
}

impl Default for DialPolicy {
    fn default() -> Self {
        Self {
            retry_window: Duration::from_secs(10),
            initial_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(250),
        }
    }
}

/// Redial state of a peer whose stream died or whose dial gave up.
struct PeerBackoff {
    next_attempt: Instant,
    delay: Duration,
}

/// The address book of a TCP cluster plus any pre-bound listeners.
///
/// Two construction modes:
/// * [`TcpFabric::bind_loopback`] — single-process clusters: binds an
///   OS-assigned loopback port per node up front, so the full address map is
///   known before any endpoint starts.
/// * [`TcpFabric::from_addrs`] — multi-process clusters: every process is
///   given the same externally chosen address map and binds only its own
///   node's listener.
///
/// The address map is shared with every endpoint created from the fabric, so
/// nodes added later through [`TcpFabric::add_loopback_node`] (elastic worker
/// membership) become dialable by already-running endpoints.
pub struct TcpFabric {
    addrs: Arc<RwLock<HashMap<NodeId, SocketAddr>>>,
    prebound: Mutex<HashMap<NodeId, TcpListener>>,
    stats: Arc<SharedNetworkStats>,
    dial_policy: DialPolicy,
}

impl TcpFabric {
    /// Binds one loopback listener per node and records the assigned ports.
    pub fn bind_loopback(nodes: &[NodeId]) -> NetResult<Self> {
        let mut addrs = HashMap::new();
        let mut prebound = HashMap::new();
        for node in nodes {
            let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
            addrs.insert(*node, listener.local_addr().map_err(io_err)?);
            prebound.insert(*node, listener);
        }
        Ok(Self {
            addrs: Arc::new(RwLock::new(addrs)),
            prebound: Mutex::new(prebound),
            stats: Arc::new(SharedNetworkStats::new()),
            dial_policy: DialPolicy::default(),
        })
    }

    /// Builds a fabric from an externally chosen address map.
    pub fn from_addrs(addrs: HashMap<NodeId, SocketAddr>) -> Self {
        Self {
            addrs: Arc::new(RwLock::new(addrs)),
            prebound: Mutex::new(HashMap::new()),
            stats: Arc::new(SharedNetworkStats::new()),
            dial_policy: DialPolicy::default(),
        }
    }

    /// Overrides the dialing policy used by endpoints created *after* this
    /// call (tests shorten the windows; deployments tune backoff).
    pub fn with_dial_policy(mut self, policy: DialPolicy) -> Self {
        self.dial_policy = policy;
        self
    }

    /// The address of a node, if it is part of the fabric.
    pub fn addr(&self, node: NodeId) -> Option<SocketAddr> {
        self.addrs.read().get(&node).copied()
    }

    /// Adds a node to a running fabric, binding a fresh loopback listener
    /// for it. Existing endpoints share the address map and can dial the new
    /// node immediately; returns its address.
    pub fn add_loopback_node(&self, node: NodeId) -> NetResult<SocketAddr> {
        let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
        let addr = listener.local_addr().map_err(io_err)?;
        self.addrs.write().insert(node, addr);
        self.prebound.lock().insert(node, listener);
        Ok(addr)
    }

    /// Creates the endpoint for `node`, binding its listener (or taking the
    /// pre-bound one from [`TcpFabric::bind_loopback`]). Re-creating the
    /// endpoint of a node whose previous endpoint was dropped re-binds the
    /// same address — this is how a rejoining worker reclaims its identity.
    pub fn endpoint(&self, node: NodeId) -> NetResult<TcpEndpoint> {
        let listener = match self.prebound.lock().remove(&node) {
            Some(l) => l,
            None => {
                let addr = self
                    .addrs
                    .read()
                    .get(&node)
                    .copied()
                    .ok_or_else(|| NetError::UnknownNode(node.to_string()))?;
                TcpListener::bind(addr).map_err(io_err)?
            }
        };
        TcpEndpoint::start(
            node,
            Arc::clone(&self.addrs),
            listener,
            Arc::clone(&self.stats),
            self.dial_policy,
        )
    }

    /// Snapshot of the traffic recorded by every endpoint created from this
    /// fabric (meaningful for single-process clusters; each process of a
    /// multi-process cluster sees only its own endpoints' sends).
    pub fn stats(&self) -> NetworkStats {
        self.stats.snapshot()
    }
}

fn io_err(e: std::io::Error) -> NetError {
    NetError::Io(e.to_string())
}

struct Shared {
    node: NodeId,
    addrs: Arc<RwLock<HashMap<NodeId, SocketAddr>>>,
    dial_policy: DialPolicy,
    /// Write halves, one dialed stream per peer, each with its own corked
    /// encode buffer (cleared and reused per flush, so steady-state sends
    /// allocate nothing).
    writers: Mutex<HashMap<NodeId, Arc<Mutex<PeerWriter>>>>,
    /// Peers whose stream died or whose dial gave up, with redial backoff.
    downed: Mutex<HashMap<NodeId, PeerBackoff>>,
    /// Live inbound stream count per identified peer.
    inbound: Mutex<HashMap<NodeId, usize>>,
    /// Peers that delivered traffic and then lost every inbound stream; the
    /// next stream that identifies as one of these triggers
    /// `PeerReconnected`.
    lost_inbound: Mutex<HashSet<NodeId>>,
    inbox_tx: Sender<Envelope>,
    stats: Arc<SharedNetworkStats>,
    shutdown: AtomicBool,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Clones of every live reader's stream, keyed by reader id, so drop can
    /// `shutdown(2)` them and unblock the blocking reads.
    reader_streams: Mutex<HashMap<u64, TcpStream>>,
    next_reader_id: AtomicU64,
}

/// One node's connection to a TCP fabric. See the module docs for the
/// threading model: one accept thread plus one reader thread per inbound
/// peer connection, all joined on drop.
pub struct TcpEndpoint {
    shared: Arc<Shared>,
    inbox: Receiver<Envelope>,
    accept_thread: Option<JoinHandle<()>>,
    local_addr: SocketAddr,
}

impl TcpEndpoint {
    fn start(
        node: NodeId,
        addrs: Arc<RwLock<HashMap<NodeId, SocketAddr>>>,
        listener: TcpListener,
        stats: Arc<SharedNetworkStats>,
        dial_policy: DialPolicy,
    ) -> NetResult<Self> {
        let local_addr = listener.local_addr().map_err(io_err)?;
        let (inbox_tx, inbox) = unbounded();
        let shared = Arc::new(Shared {
            node,
            addrs,
            dial_policy,
            writers: Mutex::new(HashMap::new()),
            downed: Mutex::new(HashMap::new()),
            inbound: Mutex::new(HashMap::new()),
            lost_inbound: Mutex::new(HashSet::new()),
            inbox_tx,
            stats,
            shutdown: AtomicBool::new(false),
            reader_threads: Mutex::new(Vec::new()),
            reader_streams: Mutex::new(HashMap::new()),
            next_reader_id: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name(format!("nimbus-tcp-accept-{node}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(io_err)?;
        Ok(Self {
            shared,
            inbox,
            accept_thread: Some(accept_thread),
            local_addr,
        })
    }

    /// The address this endpoint's listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the traffic counters shared with the fabric.
    pub fn stats(&self) -> NetworkStats {
        self.shared.stats.snapshot()
    }

    fn writer_for(&self, to: NodeId) -> NetResult<Arc<Mutex<PeerWriter>>> {
        if let Some(w) = self.shared.writers.lock().get(&to) {
            return Ok(Arc::clone(w));
        }
        let addr = self
            .shared
            .addrs
            .read()
            .get(&to)
            .copied()
            .ok_or_else(|| NetError::UnknownNode(to.to_string()))?;
        let policy = self.shared.dial_policy;
        // A peer that failed before redials under backoff: within the backoff
        // window sends fail fast (halts and shutdown broadcasts to a dead
        // peer must not block the caller); past it, one quick attempt.
        let redial = {
            let downed = self.shared.downed.lock();
            match downed.get(&to) {
                Some(b) if Instant::now() < b.next_attempt => {
                    return Err(NetError::Disconnected(to.to_string()));
                }
                Some(_) => true,
                None => false,
            }
        };
        let stream = if redial {
            match TcpStream::connect_timeout(&addr, policy.connect_timeout) {
                Ok(s) => s,
                Err(e) => {
                    let mut downed = self.shared.downed.lock();
                    let entry = downed.entry(to).or_insert(PeerBackoff {
                        next_attempt: Instant::now(),
                        delay: policy.initial_backoff,
                    });
                    entry.delay = (entry.delay * 2).min(policy.max_backoff);
                    entry.next_attempt = Instant::now() + entry.delay;
                    return Err(io_err(e));
                }
            }
        } else {
            // First dial: wait out the startup window so the cluster's
            // processes can come up in any order.
            let deadline = Instant::now() + policy.retry_window;
            loop {
                match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
                    Ok(s) => break s,
                    Err(e) => {
                        if self.shared.shutdown.load(Ordering::Relaxed)
                            || Instant::now() >= deadline
                        {
                            // Mark down (retriable) rather than dead forever:
                            // later sends fail fast until the backoff allows
                            // another attempt.
                            self.shared.downed.lock().insert(
                                to,
                                PeerBackoff {
                                    next_attempt: Instant::now() + policy.initial_backoff,
                                    delay: policy.initial_backoff,
                                },
                            );
                            return Err(io_err(e));
                        }
                        std::thread::sleep(DIAL_PAUSE);
                    }
                }
            }
        };
        stream.set_nodelay(true).ok();
        self.shared.downed.lock().remove(&to);
        let writer = Arc::new(Mutex::new(PeerWriter {
            stream,
            buf: Vec::new(),
        }));
        // A concurrent send may have dialed the same peer; keep the first.
        let mut writers = self.shared.writers.lock();
        Ok(Arc::clone(
            writers.entry(to).or_insert_with(|| Arc::clone(&writer)),
        ))
    }

    /// True when we currently hold at least one live inbound stream from
    /// `peer` — proof the peer's process is up regardless of what the
    /// outbound backoff or a cached writer's fate says.
    fn peer_observably_up(&self, peer: NodeId) -> bool {
        self.shared.inbound.lock().get(&peer).copied().unwrap_or(0) > 0
    }

    /// Marks the established stream to `to` dead and arms an immediate
    /// redial (the peer may already be back).
    fn note_write_failure(&self, to: NodeId) {
        self.shared.writers.lock().remove(&to);
        let policy = self.shared.dial_policy;
        self.shared.downed.lock().insert(
            to,
            PeerBackoff {
                next_attempt: Instant::now(),
                delay: policy.initial_backoff,
            },
        );
    }
}

/// One dialed stream plus its corked encode buffer. The buffer lives with
/// the stream so encoding happens under the same short lock as the write:
/// one lock round-trip and one `write(2)` per flush, zero allocations once
/// the buffer reaches its working size.
struct PeerWriter {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// Encode-buffer capacity retained across flushes. Control messages are a
/// few hundred bytes; without this cap a single near-`MAX_FRAME` data
/// transfer would pin its high-water capacity on that peer's writer for the
/// life of the connection.
const WRITER_BUF_RETAIN: usize = 256 << 10;

impl PeerWriter {
    /// Releases an outlier-sized buffer after a flush.
    fn shrink(&mut self) {
        if self.buf.capacity() > WRITER_BUF_RETAIN {
            self.buf = Vec::new();
        }
    }
}

impl TransportEndpoint for TcpEndpoint {
    fn node(&self) -> NodeId {
        self.shared.node
    }

    fn send(&self, to: NodeId, message: Message) -> NetResult<()> {
        // Traffic accounting mirrors the in-process fabric: the inner
        // message's counted size, recorded only once the send succeeded —
        // retries against a dead peer must not inflate the counters the
        // cross-transport comparisons rely on.
        let (tag, wire_size, is_data) = (message.tag(), message.wire_size(), message.is_data());
        let record = |shared: &Shared| {
            shared.stats.record(tag, wire_size, is_data);
        };
        let envelope = Envelope {
            from: self.shared.node,
            to,
            message,
        };
        if to == self.shared.node {
            self.shared
                .inbox_tx
                .send(envelope)
                .map_err(|_| NetError::Disconnected(to.to_string()))?;
            record(&self.shared);
            return Ok(());
        }
        // One buffer, one write: the frame (header and payload) is encoded
        // straight into the peer's reusable buffer — no per-message
        // allocation — and flushed with a single `write(2)`; with
        // TCP_NODELAY a separate header write would flush as its own
        // segment, doubling the per-message cost.
        //
        // A failed write marks the stream dead (supervision) — and, when we
        // are actively *receiving* from the peer, retries exactly once over
        // a fresh dial: a restarting peer can leave a stale cached writer
        // (a dial that landed in its dying endpoint's accept window) whose
        // first write fails just as the peer is provably back up, and a
        // fire-and-forget caller (the rejoin handshake's template
        // reinstalls) would otherwise lose the message silently.
        for attempt in 0..2 {
            let writer = self.writer_for(to)?;
            let result = {
                let mut guard = writer.lock();
                let w = &mut *guard;
                w.buf.clear();
                framing::append_frame(&mut w.buf, &envelope)?;
                let r = w.stream.write_all(&w.buf);
                if r.is_ok() {
                    self.shared.stats.record_tcp_write();
                }
                w.shrink();
                r
            };
            match result {
                Ok(()) => {
                    record(&self.shared);
                    return Ok(());
                }
                Err(_) => {
                    // Drop the writer and allow an immediate redial.
                    self.note_write_failure(to);
                    if attempt == 0 && self.peer_observably_up(to) {
                        continue;
                    }
                    return Err(NetError::Disconnected(to.to_string()));
                }
            }
        }
        unreachable!("send retry loop returns on every path")
    }

    /// The corked write path: every message is encoded into the peer's
    /// reuse buffer as one batch frame and the whole batch is flushed with
    /// exactly one `write(2)` — all-or-nothing, order preserved.
    fn send_many(&self, to: NodeId, messages: Vec<Message>) -> NetResult<()> {
        if messages.len() <= 1 {
            return match messages.into_iter().next() {
                Some(message) => self.send(to, message),
                None => Ok(()),
            };
        }
        // A batch that cannot fit one frame falls back to per-message sends
        // rather than failing: correctness first, coalescing second.
        let total: usize = messages
            .iter()
            .map(|m| m.wire_size().saturating_add(64))
            .sum();
        if total > MAX_FRAME {
            for message in messages {
                self.send(to, message)?;
            }
            return Ok(());
        }
        let metas: Vec<(&'static str, usize, bool)> = messages
            .iter()
            .map(|m| (m.tag(), m.wire_size(), m.is_data()))
            .collect();
        let n = messages.len() as u64;
        let envelopes: Vec<Envelope> = messages
            .into_iter()
            .map(|message| Envelope {
                from: self.shared.node,
                to,
                message,
            })
            .collect();
        if to == self.shared.node {
            for envelope in envelopes {
                self.shared
                    .inbox_tx
                    .send(envelope)
                    .map_err(|_| NetError::Disconnected(to.to_string()))?;
            }
            for (tag, size, is_data) in metas {
                self.shared.stats.record(tag, size, is_data);
            }
            self.shared.stats.record_batch(n);
            return Ok(());
        }
        // Same single-retry-when-observably-up policy as `send` (see there):
        // the whole batch is all-or-nothing, so retrying the failed write
        // re-sends nothing that was delivered.
        for attempt in 0..2 {
            let writer = self.writer_for(to)?;
            let result = {
                let mut guard = writer.lock();
                let w = &mut *guard;
                w.buf.clear();
                framing::append_batch_frame(&mut w.buf, &envelopes)?;
                let r = w.stream.write_all(&w.buf);
                if r.is_ok() {
                    self.shared.stats.record_tcp_write();
                }
                w.shrink();
                r
            };
            match result {
                Ok(()) => {
                    for (tag, size, is_data) in metas {
                        self.shared.stats.record(tag, size, is_data);
                    }
                    self.shared.stats.record_batch(n);
                    return Ok(());
                }
                Err(_) => {
                    self.note_write_failure(to);
                    if attempt == 0 && self.peer_observably_up(to) {
                        continue;
                    }
                    return Err(NetError::Disconnected(to.to_string()));
                }
            }
        }
        unreachable!("send_many retry loop returns on every path")
    }

    fn recv(&self) -> NetResult<Envelope> {
        self.inbox
            .recv()
            .map_err(|_| NetError::Disconnected(self.shared.node.to_string()))
    }

    fn recv_timeout(&self, timeout: Duration) -> NetResult<Envelope> {
        self.inbox
            .recv_timeout(timeout)
            .map_err(|_| NetError::Timeout)
    }

    fn try_recv(&self) -> NetResult<Envelope> {
        self.inbox.try_recv().map_err(|_| NetError::Empty)
    }

    fn pending(&self) -> usize {
        self.inbox.len()
    }

    fn reset_worker_peers(&self) {
        self.shared
            .writers
            .lock()
            .retain(|node, _| !matches!(node, NodeId::Worker(_)));
        self.shared
            .downed
            .lock()
            .retain(|node, _| !matches!(node, NodeId::Worker(_)));
    }
}

impl Drop for TcpEndpoint {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        // Closing write halves lets peers' readers observe EOF promptly.
        self.shared.writers.lock().clear();
        // Unblock our own readers: shut their streams down so the blocking
        // reads return immediately.
        for stream in self.shared.reader_streams.lock().values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        // Wake the blocking accept with a throwaway self-connection.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let readers = std::mem::take(&mut *self.shared.reader_threads.lock());
        for handle in readers {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return; // The wake-up self-connection from drop.
                }
                stream.set_nodelay(true).ok();
                let reader_id = shared.next_reader_id.fetch_add(1, Ordering::Relaxed);
                match stream.try_clone() {
                    Ok(clone) => {
                        shared.reader_streams.lock().insert(reader_id, clone);
                    }
                    Err(_) => {
                        // Without a clone drop cannot unblock this reader;
                        // fall back to a read timeout so the shutdown flag
                        // is still honored within a bounded delay.
                        stream
                            .set_read_timeout(Some(Duration::from_millis(100)))
                            .ok();
                    }
                }
                let reader_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("nimbus-tcp-read-{}", shared.node))
                    .spawn(move || reader_loop(stream, reader_id, reader_shared));
                if let Ok(handle) = spawned {
                    let mut threads = shared.reader_threads.lock();
                    // Reap finished readers so short-lived connections (a
                    // malformed peer, a port probe) don't accumulate
                    // join handles for the life of the endpoint.
                    threads.retain(|t| !t.is_finished());
                    threads.push(handle);
                }
            }
            // Transient failures (ECONNABORTED: peer reset before accept;
            // EMFILE: momentary fd exhaustion) must not kill the accept
            // thread — that would silently make the node unreachable for
            // every future dial. Back off and keep accepting; shutdown is
            // the only exit.
            Err(_) => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(ACCEPT_ERROR_PAUSE);
            }
        }
    }
}

/// Delivers one decoded envelope into the local inbox, identifying the peer
/// on its first envelope (and injecting the reconnect notice when a
/// previously lost peer returns). Returns `false` when the connection must
/// be dropped: a forged transport event, or the endpoint going away.
fn deliver_envelope(envelope: Envelope, peer: &mut Option<NodeId>, shared: &Shared) -> bool {
    // Transport events are generated locally, never sent: a peer that puts
    // one on the wire is forging connectivity notices (e.g. a fake
    // PeerDisconnected(Controller) would shut a worker down). Treat it as a
    // malformed peer.
    if matches!(envelope.message, Message::Transport(_)) {
        return false;
    }
    if peer.is_none() {
        let from = envelope.from;
        *peer = Some(from);
        *shared.inbound.lock().entry(from).or_insert(0) += 1;
        // A fresh inbound stream is live proof the peer is up: clear any
        // redial backoff immediately. Without this, dial failures during
        // the peer's dead window keep doubling the backoff, and a send
        // right after the peer returns (e.g. the rejoin handshake's
        // template reinstalls) would still fail fast inside the stale
        // window — silently, since handshake sends are best-effort.
        shared.downed.lock().remove(&from);
        if shared.lost_inbound.lock().remove(&from) {
            let notice = Envelope {
                from,
                to: shared.node,
                message: Message::Transport(TransportEvent::PeerReconnected(from)),
            };
            if shared.inbox_tx.send(notice).is_err() {
                return false; // Endpoint dropped.
            }
        }
    }
    shared.inbox_tx.send(envelope).is_ok()
}

/// Reads frames off one inbound connection until EOF, error, or shutdown.
/// Batch frames are expanded into their envelopes in order, so nodes only
/// ever observe plain envelopes — batching is invisible above the wire.
/// The first envelope identifies the peer; losing the peer's *last* inbound
/// stream injects [`TransportEvent::PeerDisconnected`], and a new stream
/// from a previously lost peer injects [`TransportEvent::PeerReconnected`]
/// ahead of its first envelope.
fn reader_loop(mut stream: TcpStream, reader_id: u64, shared: Arc<Shared>) {
    let mut peer: Option<NodeId> = None;
    'conn: loop {
        match read_frame(&mut stream, &shared) {
            Ok(Some(Frame::Single(payload))) => match codec::decode::<Envelope>(&payload) {
                Ok(envelope) => {
                    if !deliver_envelope(envelope, &mut peer, &shared) {
                        break; // Malformed peer or endpoint dropped.
                    }
                }
                Err(_) => break, // Malformed peer: drop the connection.
            },
            Ok(Some(Frame::Batch(payload))) => match framing::parse_batch(&payload) {
                Ok(envelopes) => {
                    for envelope in envelopes {
                        if !deliver_envelope(envelope, &mut peer, &shared) {
                            break 'conn;
                        }
                    }
                }
                Err(_) => break, // Malformed peer: drop the connection.
            },
            Ok(None) => break, // Shutdown requested.
            Err(_) => break,   // EOF or transport error.
        }
    }
    shared.reader_streams.lock().remove(&reader_id);
    if shared.shutdown.load(Ordering::Relaxed) {
        return;
    }
    if let Some(peer) = peer {
        let last_stream = {
            let mut inbound = shared.inbound.lock();
            match inbound.get_mut(&peer) {
                Some(count) => {
                    *count = count.saturating_sub(1);
                    *count == 0
                }
                None => true,
            }
        };
        if last_stream {
            shared.lost_inbound.lock().insert(peer);
            // Connections come in pairs (one per direction): losing the
            // peer's inbound stream means our outbound stream to it is a
            // stale half-open socket whose next writes would be silently
            // buffered and lost. Tear it down now so the next send redials
            // the peer's (possibly restarted) process instead.
            shared.writers.lock().remove(&peer);
            shared.downed.lock().insert(
                peer,
                PeerBackoff {
                    next_attempt: Instant::now(),
                    delay: shared.dial_policy.initial_backoff,
                },
            );
            let _ = shared.inbox_tx.send(Envelope {
                from: peer,
                to: shared.node,
                message: Message::Transport(TransportEvent::PeerDisconnected(peer)),
            });
        }
    }
}

/// One frame off the wire: a single envelope's payload, or a batch frame's
/// payload (several concatenated sub-frames; see [`crate::framing`]).
enum Frame {
    Single(Vec<u8>),
    Batch(Vec<u8>),
}

/// Reads one length-prefixed frame. Returns `Ok(None)` when shutdown was
/// requested mid-read, `Err` on EOF, oversized frames, or IO errors. The
/// header's high bit distinguishes batch frames from single frames.
fn read_frame(stream: &mut TcpStream, shared: &Shared) -> std::io::Result<Option<Frame>> {
    let mut header = [0u8; 4];
    if read_full(stream, &mut header, shared)?.is_none() {
        return Ok(None);
    }
    let header = u32::from_le_bytes(header);
    let is_batch = header & BATCH_FLAG != 0;
    let len = (header & !BATCH_FLAG) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    if read_full(stream, &mut payload, shared)?.is_none() {
        return Ok(None);
    }
    Ok(Some(if is_batch {
        Frame::Batch(payload)
    } else {
        Frame::Single(payload)
    }))
}

/// `read_exact` that keeps checking the shutdown flag. Reads block in the
/// kernel; drop unblocks them by shutting the stream down (or, for streams
/// that could not be cloned, through their fallback read timeout). Returns
/// `Ok(None)` when shutdown was requested.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
) -> std::io::Result<Option<()>> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::Relaxed) {
            return Ok(None);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed",
                ))
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == ErrorKind::WouldBlock
                    || e.kind() == ErrorKind::TimedOut
                    || e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Some(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ControllerToDriver, DriverMessage};
    use nimbus_core::WorkerId;

    fn loopback_pair() -> (TcpFabric, TcpEndpoint, TcpEndpoint) {
        let fabric = TcpFabric::bind_loopback(&[NodeId::Driver, NodeId::Controller]).unwrap();
        let driver = fabric.endpoint(NodeId::Driver).unwrap();
        let controller = fabric.endpoint(NodeId::Controller).unwrap();
        (fabric, driver, controller)
    }

    #[test]
    fn send_and_receive_over_loopback() {
        let (_fabric, driver, controller) = loopback_pair();
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.from, NodeId::Driver);
        assert_eq!(env.to, NodeId::Controller);
        assert_eq!(env.message, Message::driver0(DriverMessage::Barrier));

        controller
            .send(
                NodeId::Driver,
                Message::ToDriver(ControllerToDriver::BarrierReached),
            )
            .unwrap();
        let env = driver.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            env.message,
            Message::ToDriver(ControllerToDriver::BarrierReached)
        );
    }

    #[test]
    fn messages_from_one_sender_arrive_in_order() {
        let (_fabric, driver, controller) = loopback_pair();
        for i in 0..100u64 {
            driver
                .send(
                    NodeId::Controller,
                    Message::driver0(DriverMessage::Checkpoint { marker: i }),
                )
                .unwrap();
        }
        for i in 0..100u64 {
            let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(
                env.message,
                Message::driver0(DriverMessage::Checkpoint { marker: i })
            );
        }
    }

    #[test]
    fn unknown_peer_is_rejected() {
        let (_fabric, driver, _controller) = loopback_pair();
        let err = driver
            .send(
                NodeId::Worker(WorkerId(7)),
                Message::driver0(DriverMessage::Barrier),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::UnknownNode(_)), "{err}");
    }

    #[test]
    fn peer_drop_is_reported_and_sends_fail_fast() {
        let (_fabric, driver, controller) = loopback_pair();
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        controller.recv_timeout(Duration::from_secs(5)).unwrap();
        drop(driver);
        // The controller's reader observes EOF and reports the driver gone.
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            env.message,
            Message::Transport(TransportEvent::PeerDisconnected(NodeId::Driver))
        );
    }

    /// The heart of the rejoin story at the transport layer: a peer whose
    /// endpoint died and was re-created is reported as reconnected, its
    /// traffic flows again, and outbound sends to it recover through the
    /// redial backoff instead of staying dead forever.
    #[test]
    fn peer_rejoin_is_reported_and_traffic_resumes_both_ways() {
        let (fabric, driver, controller) = loopback_pair();
        // Establish traffic in both directions.
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        controller.recv_timeout(Duration::from_secs(5)).unwrap();
        controller
            .send(NodeId::Driver, Message::ToDriver(ControllerToDriver::Ack))
            .unwrap();
        driver.recv_timeout(Duration::from_secs(5)).unwrap();

        drop(driver);
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            env.message,
            Message::Transport(TransportEvent::PeerDisconnected(NodeId::Driver))
        );

        // The peer returns on the same fabric address.
        let driver2 = fabric.endpoint(NodeId::Driver).unwrap();
        driver2
            .send(
                NodeId::Controller,
                Message::driver0(DriverMessage::Checkpoint { marker: 42 }),
            )
            .unwrap();
        // Reconnect notice arrives strictly before the new traffic.
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            env.message,
            Message::Transport(TransportEvent::PeerReconnected(NodeId::Driver))
        );
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            env.message,
            Message::driver0(DriverMessage::Checkpoint { marker: 42 })
        );

        // Outbound recovers too: the controller's old writer is dead, but
        // supervised redial re-establishes it within the backoff budget.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match controller.send(NodeId::Driver, Message::ToDriver(ControllerToDriver::Ack)) {
                Ok(()) => break,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("send to rejoined peer never recovered: {e}"),
            }
        }
        let env = driver2.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.message, Message::ToDriver(ControllerToDriver::Ack));
    }

    /// A dial that exhausts its startup window no longer kills the peer
    /// forever: once the peer actually binds, sends recover.
    #[test]
    fn dial_give_up_is_retriable_once_the_peer_appears() {
        let w0 = NodeId::Worker(WorkerId(0));
        let w1 = NodeId::Worker(WorkerId(1));
        // w1's address is reserved but nothing listens on it yet.
        let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
        let w1_addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let a_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut addrs = HashMap::new();
        addrs.insert(w0, a_listener.local_addr().unwrap());
        addrs.insert(w1, w1_addr);
        drop(a_listener);
        let fabric = TcpFabric::from_addrs(addrs).with_dial_policy(DialPolicy {
            retry_window: Duration::from_millis(100),
            initial_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(50),
            connect_timeout: Duration::from_millis(100),
        });
        let a = fabric.endpoint(w0).unwrap();

        // First send exhausts the startup window and fails...
        assert!(a
            .send(w1, Message::driver0(DriverMessage::Barrier))
            .is_err());
        // ...and within the backoff window further sends fail fast.
        let t = Instant::now();
        assert!(a
            .send(w1, Message::driver0(DriverMessage::Barrier))
            .is_err());
        assert!(
            t.elapsed() < Duration::from_millis(90),
            "backoff gate did not fail fast: {:?}",
            t.elapsed()
        );

        // The peer finally binds: sends recover after the backoff.
        let b = fabric.endpoint(w1).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match a.send(w1, Message::driver0(DriverMessage::Barrier)) {
                Ok(()) => break,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(10))
                }
                Err(e) => panic!("send never recovered after peer appeared: {e}"),
            }
        }
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.message, Message::driver0(DriverMessage::Barrier));
    }

    /// A peer's fresh inbound stream clears its redial backoff immediately:
    /// sends issued right after the peer announces itself (the rejoin
    /// handshake's template reinstalls) must not fail fast inside a stale
    /// backoff window grown by dial failures during the dead window.
    #[test]
    fn inbound_stream_clears_redial_backoff_immediately() {
        let w0 = NodeId::Worker(WorkerId(0));
        let w1 = NodeId::Worker(WorkerId(1));
        let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
        let w1_addr = placeholder.local_addr().unwrap();
        drop(placeholder);
        let a_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut addrs = HashMap::new();
        addrs.insert(w0, a_listener.local_addr().unwrap());
        addrs.insert(w1, w1_addr);
        drop(a_listener);
        // A LONG max backoff: repeated dial failures push next_attempt far
        // into the future, so only the inbound-stream clearing (not the
        // passage of time) can explain a recovered send below.
        let fabric = TcpFabric::from_addrs(addrs).with_dial_policy(DialPolicy {
            retry_window: Duration::from_millis(50),
            initial_backoff: Duration::from_millis(200),
            max_backoff: Duration::from_secs(60),
            connect_timeout: Duration::from_millis(100),
        });
        let a = fabric.endpoint(w0).unwrap();
        // Grow the backoff with a few failed dial rounds.
        for _ in 0..4 {
            let _ = a.send(w1, Message::driver0(DriverMessage::Barrier));
            std::thread::sleep(Duration::from_millis(60));
        }
        // The peer comes up and announces itself with an inbound stream.
        let b = fabric.endpoint(w1).unwrap();
        b.send(w0, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        let env = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(
            env.message,
            Message::Driver {
                msg: DriverMessage::Barrier,
                ..
            }
        ));
        // An immediate outbound send succeeds — no waiting out the stale
        // backoff window.
        a.send(w1, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(
            env.message,
            Message::Driver {
                msg: DriverMessage::Barrier,
                ..
            }
        ));
    }

    #[test]
    fn garbage_frames_do_not_panic_or_wedge_the_endpoint() {
        let (_fabric, driver, controller) = loopback_pair();
        // A raw connection spraying garbage: bogus oversized header.
        let mut raw = TcpStream::connect(controller.local_addr()).unwrap();
        raw.write_all(&(u32::MAX).to_le_bytes()).unwrap();
        raw.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        // A second raw connection with a well-sized frame of undecodable bytes.
        let mut raw2 = TcpStream::connect(controller.local_addr()).unwrap();
        raw2.write_all(&4u32.to_le_bytes()).unwrap();
        raw2.write_all(&[0xff, 0xff, 0xff, 0xff]).unwrap();
        raw2.flush().unwrap();
        // A third connection that dies before completing its 4-byte header:
        // the short-frame case the length guard must reject without any
        // underflow.
        let mut raw3 = TcpStream::connect(controller.local_addr()).unwrap();
        raw3.write_all(&[0x01, 0x02]).unwrap();
        drop(raw3);
        // Legitimate traffic still flows.
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.message, Message::driver0(DriverMessage::Barrier));
        // And the garbage never surfaced as an envelope.
        assert!(controller.try_recv().is_err());
    }

    #[test]
    fn data_payloads_cross_as_bytes() {
        use crate::message::DataTransfer;
        use crate::payload::DataPayload;
        use nimbus_core::appdata::VecF64;
        use nimbus_core::TransferId;

        let w0 = NodeId::Worker(WorkerId(0));
        let w1 = NodeId::Worker(WorkerId(1));
        let fabric = TcpFabric::bind_loopback(&[w0, w1]).unwrap();
        let a = fabric.endpoint(w0).unwrap();
        let b = fabric.endpoint(w1).unwrap();
        a.send(
            w1,
            Message::Data(DataTransfer {
                job: nimbus_core::JobId(1),
                transfer: TransferId(3),
                from_worker: WorkerId(0),
                payload: DataPayload::Object(Box::new(VecF64::new(vec![1.0, -2.5]))),
            }),
        )
        .unwrap();
        let env = b.recv_timeout(Duration::from_secs(5)).unwrap();
        let Message::Data(transfer) = env.message else {
            panic!("expected data transfer, got {:?}", env.message);
        };
        assert_eq!(transfer.transfer, TransferId(3));
        let DataPayload::Bytes(bytes) = transfer.payload else {
            panic!("expected bytes payload");
        };
        let mut decoded = VecF64::default();
        nimbus_core::appdata::AppData::decode_wire(&mut decoded, bytes.as_slice()).unwrap();
        assert_eq!(decoded.values, vec![1.0, -2.5]);
    }

    #[test]
    fn nodes_added_to_a_running_fabric_are_dialable() {
        let (fabric, driver, _controller) = loopback_pair();
        let w9 = NodeId::Worker(WorkerId(9));
        fabric.add_loopback_node(w9).unwrap();
        let late = fabric.endpoint(w9).unwrap();
        driver
            .send(w9, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        let env = late.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.message, Message::driver0(DriverMessage::Barrier));
    }

    /// The corked writer contract: a batched send crosses the wire as one
    /// frame flushed by exactly one `write(2)`, envelopes arrive in order,
    /// and ordering against surrounding single sends is preserved.
    #[test]
    fn batched_send_is_one_write_syscall_and_preserves_order() {
        let (_fabric, driver, controller) = loopback_pair();
        // Warm the connection so the dial is out of the way.
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        controller.recv_timeout(Duration::from_secs(5)).unwrap();
        let before = driver.stats();
        let batch: Vec<Message> = (0..10u64)
            .map(|i| Message::driver0(DriverMessage::Checkpoint { marker: i }))
            .collect();
        driver.send_many(NodeId::Controller, batch).unwrap();
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        for i in 0..10u64 {
            let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(
                env.message,
                Message::driver0(DriverMessage::Checkpoint { marker: i })
            );
        }
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.message, Message::driver0(DriverMessage::Barrier));
        let after = driver.stats();
        assert_eq!(
            after.tcp_writes - before.tcp_writes,
            2,
            "10-message batch + 1 single send must be exactly 2 write(2)s"
        );
        assert_eq!(after.frames_coalesced - before.frames_coalesced, 9);
        assert_eq!(after.batched_commands - before.batched_commands, 10);
        assert_eq!(after.messages - before.messages, 11);
    }

    /// Byte accounting must not depend on batching: the same messages sent
    /// batched and unbatched record identical message counts and bytes.
    #[test]
    fn batched_and_unbatched_sends_account_identically() {
        let messages = |n: u64| -> Vec<Message> {
            (0..n)
                .map(|i| Message::driver0(DriverMessage::Checkpoint { marker: i }))
                .collect()
        };
        let (_fabric, driver, controller) = loopback_pair();
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        controller.recv_timeout(Duration::from_secs(5)).unwrap();

        let base = driver.stats();
        for m in messages(8) {
            driver.send(NodeId::Controller, m).unwrap();
        }
        let unbatched = driver.stats();
        driver.send_many(NodeId::Controller, messages(8)).unwrap();
        let batched = driver.stats();
        for _ in 0..16 {
            controller.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(
            unbatched.messages - base.messages,
            batched.messages - unbatched.messages
        );
        assert_eq!(
            unbatched.control_bytes - base.control_bytes,
            batched.control_bytes - unbatched.control_bytes
        );
        assert_eq!(
            unbatched.count("checkpoint") + 8,
            batched.count("checkpoint")
        );
    }

    #[test]
    fn empty_and_single_batches_degenerate_to_plain_sends() {
        let (_fabric, driver, controller) = loopback_pair();
        driver.send_many(NodeId::Controller, Vec::new()).unwrap();
        driver
            .send_many(
                NodeId::Controller,
                vec![Message::driver0(DriverMessage::Barrier)],
            )
            .unwrap();
        let env = controller.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(env.message, Message::driver0(DriverMessage::Barrier));
        let stats = driver.stats();
        assert_eq!(stats.batched_commands, 0, "singletons are not batches");
        assert_eq!(stats.frames_coalesced, 0);
    }

    #[test]
    fn drop_joins_all_transport_threads() {
        let (_fabric, driver, controller) = loopback_pair();
        driver
            .send(NodeId::Controller, Message::driver0(DriverMessage::Barrier))
            .unwrap();
        controller.recv_timeout(Duration::from_secs(5)).unwrap();
        drop(driver);
        drop(controller);
        if cfg!(target_os = "linux") {
            let leaked = crate::diagnostics::wait_for_no_thread_with_prefix(
                "nimbus-tcp",
                Duration::from_secs(5),
            );
            assert!(leaked.is_none(), "transport threads leaked: {leaked:?}");
        }
    }
}
