//! Data-plane payloads exchanged directly between workers.

use bytes::Bytes;
use nimbus_core::appdata::AppData;

/// The payload of a worker-to-worker data transfer.
///
/// In a multi-machine deployment this would always be serialized bytes; the
/// in-process transport can instead hand over a cloned data object directly,
/// which is what Nimbus' in-memory copies amount to. Either way the size is
/// tracked so the evaluation can account for data-plane traffic.
pub enum DataPayload {
    /// Serialized object contents.
    Bytes(Bytes),
    /// A cloned application data object handed over in process.
    Object(Box<dyn AppData>),
}

impl DataPayload {
    /// Approximate size of the payload in bytes.
    pub fn size(&self) -> usize {
        match self {
            DataPayload::Bytes(b) => b.len(),
            DataPayload::Object(o) => o.approx_size(),
        }
    }

    /// Returns a short label describing the payload variant.
    pub fn kind(&self) -> &'static str {
        match self {
            DataPayload::Bytes(_) => "bytes",
            DataPayload::Object(_) => "object",
        }
    }
}

impl Clone for DataPayload {
    fn clone(&self) -> Self {
        match self {
            DataPayload::Bytes(b) => DataPayload::Bytes(b.clone()),
            DataPayload::Object(o) => DataPayload::Object(o.clone_box()),
        }
    }
}

impl std::fmt::Debug for DataPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DataPayload::{}({} bytes)", self.kind(), self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::VecF64;

    #[test]
    fn payload_size_and_kind() {
        let b = DataPayload::Bytes(Bytes::from_static(&[0u8; 16]));
        assert_eq!(b.size(), 16);
        assert_eq!(b.kind(), "bytes");
        let o = DataPayload::Object(Box::new(VecF64::zeros(100)));
        assert!(o.size() >= 800);
        assert_eq!(o.kind(), "object");
    }

    #[test]
    fn payload_clone_preserves_contents() {
        let o = DataPayload::Object(Box::new(VecF64::new(vec![1.0, 2.0])));
        let c = o.clone();
        match c {
            DataPayload::Object(obj) => {
                let v = nimbus_core::downcast_ref::<VecF64>(obj.as_ref()).unwrap();
                assert_eq!(v.values, vec![1.0, 2.0]);
            }
            _ => panic!("clone changed variant"),
        }
    }
}
