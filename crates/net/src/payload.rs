//! Data-plane payloads exchanged directly between workers.

use bytes::Bytes;
use nimbus_core::appdata::AppData;

/// The payload of a worker-to-worker data transfer.
///
/// In a multi-machine deployment this would always be serialized bytes; the
/// in-process transport can instead hand over a cloned data object directly,
/// which is what Nimbus' in-memory copies amount to. Either way the size is
/// tracked so the evaluation can account for data-plane traffic.
pub enum DataPayload {
    /// Serialized object contents.
    Bytes(Bytes),
    /// A cloned application data object handed over in process.
    Object(Box<dyn AppData>),
}

impl DataPayload {
    /// Approximate size of the payload in bytes.
    pub fn size(&self) -> usize {
        match self {
            DataPayload::Bytes(b) => b.len(),
            DataPayload::Object(o) => o.approx_size(),
        }
    }

    /// Returns a short label describing the payload variant.
    pub fn kind(&self) -> &'static str {
        match self {
            DataPayload::Bytes(_) => "bytes",
            DataPayload::Object(_) => "object",
        }
    }
}

impl Clone for DataPayload {
    fn clone(&self) -> Self {
        match self {
            DataPayload::Bytes(b) => DataPayload::Bytes(b.clone()),
            DataPayload::Object(o) => DataPayload::Object(o.clone_box()),
        }
    }
}

/// On the wire a payload is always raw bytes: `Bytes` payloads are written
/// as-is, `Object` payloads are serialized through [`AppData::to_wire`]
/// (objects whose type opted out of cross-process transfers fail to encode).
/// Decoding always produces the `Bytes` variant — the receiving worker
/// decodes into its already-created destination object via
/// [`AppData::decode_wire`].
impl serde::Serialize for DataPayload {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            DataPayload::Bytes(b) => serializer.serialize_bytes(b.as_slice()),
            DataPayload::Object(o) => match o.to_wire() {
                Some(bytes) => serializer.serialize_bytes(&bytes),
                None => Err(<S::Error as serde::ser::Error>::custom(format!(
                    "{} does not support cross-process transfers (no to_wire)",
                    o.type_label()
                ))),
            },
        }
    }
}

impl<'de> serde::Deserialize<'de> for DataPayload {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(DataPayload::Bytes(Bytes::deserialize(deserializer)?))
    }
}

/// Equality follows the wire representation: two payloads are equal when
/// they would serialize to the same bytes. `Object` payloads that cannot be
/// serialized compare unequal to everything (including themselves).
impl PartialEq for DataPayload {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (DataPayload::Bytes(a), DataPayload::Bytes(b)) => a.as_slice() == b.as_slice(),
            (DataPayload::Bytes(a), DataPayload::Object(o))
            | (DataPayload::Object(o), DataPayload::Bytes(a)) => {
                o.to_wire().is_some_and(|w| w == a.as_slice())
            }
            (DataPayload::Object(a), DataPayload::Object(b)) => {
                matches!((a.to_wire(), b.to_wire()), (Some(x), Some(y)) if x == y)
            }
        }
    }
}

impl std::fmt::Debug for DataPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DataPayload::{}({} bytes)", self.kind(), self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::VecF64;

    #[test]
    fn payload_size_and_kind() {
        let b = DataPayload::Bytes(Bytes::from_static(&[0u8; 16]));
        assert_eq!(b.size(), 16);
        assert_eq!(b.kind(), "bytes");
        let o = DataPayload::Object(Box::new(VecF64::zeros(100)));
        assert!(o.size() >= 800);
        assert_eq!(o.kind(), "object");
    }

    #[test]
    fn payload_clone_preserves_contents() {
        let o = DataPayload::Object(Box::new(VecF64::new(vec![1.0, 2.0])));
        let c = o.clone();
        match c {
            DataPayload::Object(obj) => {
                let v = nimbus_core::downcast_ref::<VecF64>(obj.as_ref()).unwrap();
                assert_eq!(v.values, vec![1.0, 2.0]);
            }
            _ => panic!("clone changed variant"),
        }
    }
}
