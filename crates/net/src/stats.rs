//! Network traffic statistics.

use std::collections::HashMap;

/// Counters kept by the transport, split into control plane and data plane.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkStats {
    /// Total messages delivered.
    pub messages: u64,
    /// Control-plane bytes delivered.
    pub control_bytes: u64,
    /// Data-plane bytes delivered.
    pub data_bytes: u64,
    /// Message counts by tag.
    pub by_tag: HashMap<String, u64>,
}

impl NetworkStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered message.
    pub fn record(&mut self, tag: &str, bytes: usize, is_data: bool) {
        self.messages += 1;
        if is_data {
            self.data_bytes += bytes as u64;
        } else {
            self.control_bytes += bytes as u64;
        }
        *self.by_tag.entry(tag.to_string()).or_insert(0) += 1;
    }

    /// Total bytes delivered over both planes.
    pub fn total_bytes(&self) -> u64 {
        self.control_bytes + self.data_bytes
    }

    /// Count of messages with a given tag.
    pub fn count(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_splits_planes() {
        let mut s = NetworkStats::new();
        s.record("submit_task", 100, false);
        s.record("data_transfer", 1000, true);
        s.record("submit_task", 50, false);
        assert_eq!(s.messages, 3);
        assert_eq!(s.control_bytes, 150);
        assert_eq!(s.data_bytes, 1000);
        assert_eq!(s.total_bytes(), 1150);
        assert_eq!(s.count("submit_task"), 2);
        assert_eq!(s.count("missing"), 0);
    }
}
