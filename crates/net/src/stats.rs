//! Network traffic statistics.
//!
//! The transports record one entry per delivered message on the hottest path
//! of the whole system, so the shared recorder ([`SharedNetworkStats`]) is
//! built from plain atomics: recording a message is a handful of relaxed
//! `fetch_add`s, never a lock, and never a clone. Per-tag counts use a fixed
//! table of known control-plane tags ([`TAGS`]) so they get an atomic slot
//! each instead of a locked hash map. Snapshots ([`NetworkStats`]) are the
//! plain owned struct the reports and tests consume.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Every message tag the transports can record, in a fixed order so each tag
/// owns one atomic counter slot. Unknown tags (future message types that
/// forget to register here) fall into a shared `"other"` bucket rather than
/// being dropped.
pub const TAGS: [&str; 38] = [
    "open_job",
    "close_job",
    "define_dataset",
    "submit_task",
    "start_template",
    "finish_template",
    "abort_template",
    "instantiate_template",
    "fetch_value",
    "barrier",
    "enable_templates",
    "checkpoint",
    "migrate_tasks",
    "set_workers",
    "fail_worker",
    "shutdown",
    "job_accepted",
    "value_fetched",
    "barrier_reached",
    "template_installed",
    "checkpoint_committed",
    "recovery_complete",
    "ack",
    "error",
    "job_terminated",
    "execute_commands",
    "install_template",
    "halt",
    "drop_job",
    "rejoin_accepted",
    "commands_completed",
    "worker_template_installed",
    "worker_value_fetched",
    "halted",
    "heartbeat",
    "register",
    "data_transfer",
    "transport_event",
];

/// Index of the overflow bucket for tags not present in [`TAGS`].
const OTHER: usize = TAGS.len();

/// Maps a tag to its counter slot (the `"other"` bucket for unknown tags).
fn tag_index(tag: &str) -> usize {
    match tag {
        "open_job" => 0,
        "close_job" => 1,
        "define_dataset" => 2,
        "submit_task" => 3,
        "start_template" => 4,
        "finish_template" => 5,
        "abort_template" => 6,
        "instantiate_template" => 7,
        "fetch_value" => 8,
        "barrier" => 9,
        "enable_templates" => 10,
        "checkpoint" => 11,
        "migrate_tasks" => 12,
        "set_workers" => 13,
        "fail_worker" => 14,
        "shutdown" => 15,
        "job_accepted" => 16,
        "value_fetched" => 17,
        "barrier_reached" => 18,
        "template_installed" => 19,
        "checkpoint_committed" => 20,
        "recovery_complete" => 21,
        "ack" => 22,
        "error" => 23,
        "job_terminated" => 24,
        "execute_commands" => 25,
        "install_template" => 26,
        "halt" => 27,
        "drop_job" => 28,
        "rejoin_accepted" => 29,
        "commands_completed" => 30,
        "worker_template_installed" => 31,
        "worker_value_fetched" => 32,
        "halted" => 33,
        "heartbeat" => 34,
        "register" => 35,
        "data_transfer" => 36,
        "transport_event" => 37,
        _ => OTHER,
    }
}

/// Lock-free traffic counters shared between a fabric and its endpoints.
///
/// All loads and stores are `Relaxed`: the counters are statistics, not
/// synchronization, and a snapshot taken while traffic flows is allowed to
/// be mid-flight by a message.
#[derive(Debug)]
pub struct SharedNetworkStats {
    messages: AtomicU64,
    control_bytes: AtomicU64,
    data_bytes: AtomicU64,
    frames_coalesced: AtomicU64,
    batched_commands: AtomicU64,
    tcp_writes: AtomicU64,
    by_tag: [AtomicU64; TAGS.len() + 1],
}

impl Default for SharedNetworkStats {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedNetworkStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self {
            messages: AtomicU64::new(0),
            control_bytes: AtomicU64::new(0),
            data_bytes: AtomicU64::new(0),
            frames_coalesced: AtomicU64::new(0),
            batched_commands: AtomicU64::new(0),
            tcp_writes: AtomicU64::new(0),
            by_tag: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one delivered message.
    pub fn record(&self, tag: &str, bytes: usize, is_data: bool) {
        self.messages.fetch_add(1, Ordering::Relaxed);
        if is_data {
            self.data_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        } else {
            self.control_bytes
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
        self.by_tag[tag_index(tag)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records that `n` messages were delivered through one batched send
    /// (`n >= 2`): the batch saved `n - 1` frames over the per-message path.
    pub fn record_batch(&self, n: u64) {
        self.batched_commands.fetch_add(n, Ordering::Relaxed);
        self.frames_coalesced
            .fetch_add(n.saturating_sub(1), Ordering::Relaxed);
    }

    /// Records one `write(2)` issued by a TCP writer (one per flushed frame
    /// or batch — the counter the syscall-per-flush tests pin).
    pub fn record_tcp_write(&self) {
        self.tcp_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes an owned snapshot of every counter.
    pub fn snapshot(&self) -> NetworkStats {
        let mut by_tag = HashMap::new();
        for (i, slot) in self.by_tag.iter().enumerate() {
            let count = slot.load(Ordering::Relaxed);
            if count > 0 {
                let tag = if i == OTHER { "other" } else { TAGS[i] };
                by_tag.insert(tag.to_string(), count);
            }
        }
        NetworkStats {
            messages: self.messages.load(Ordering::Relaxed),
            control_bytes: self.control_bytes.load(Ordering::Relaxed),
            data_bytes: self.data_bytes.load(Ordering::Relaxed),
            frames_coalesced: self.frames_coalesced.load(Ordering::Relaxed),
            batched_commands: self.batched_commands.load(Ordering::Relaxed),
            tcp_writes: self.tcp_writes.load(Ordering::Relaxed),
            by_tag,
        }
    }
}

/// An owned snapshot of the transport's counters, split into control plane
/// and data plane.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NetworkStats {
    /// Total messages delivered.
    pub messages: u64,
    /// Control-plane bytes delivered.
    pub control_bytes: u64,
    /// Data-plane bytes delivered.
    pub data_bytes: u64,
    /// Frames saved by batched sends: each batch of `n` messages crosses the
    /// wire as one frame instead of `n`, saving `n - 1`.
    pub frames_coalesced: u64,
    /// Messages that were delivered through a batched send.
    pub batched_commands: u64,
    /// `write(2)` calls issued by TCP writers (one per flushed frame or
    /// batch).
    pub tcp_writes: u64,
    /// Message counts by tag.
    pub by_tag: HashMap<String, u64>,
}

impl NetworkStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered message (snapshot-side convenience, used by
    /// unit tests; the transports record through [`SharedNetworkStats`]).
    pub fn record(&mut self, tag: &str, bytes: usize, is_data: bool) {
        self.messages += 1;
        if is_data {
            self.data_bytes += bytes as u64;
        } else {
            self.control_bytes += bytes as u64;
        }
        *self.by_tag.entry(tag.to_string()).or_insert(0) += 1;
    }

    /// Total bytes delivered over both planes.
    pub fn total_bytes(&self) -> u64 {
        self.control_bytes + self.data_bytes
    }

    /// Count of messages with a given tag.
    pub fn count(&self, tag: &str) -> u64 {
        self.by_tag.get(tag).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_splits_planes() {
        let mut s = NetworkStats::new();
        s.record("submit_task", 100, false);
        s.record("data_transfer", 1000, true);
        s.record("submit_task", 50, false);
        assert_eq!(s.messages, 3);
        assert_eq!(s.control_bytes, 150);
        assert_eq!(s.data_bytes, 1000);
        assert_eq!(s.total_bytes(), 1150);
        assert_eq!(s.count("submit_task"), 2);
        assert_eq!(s.count("missing"), 0);
    }

    #[test]
    fn shared_stats_snapshot_matches_recorded_traffic() {
        let shared = SharedNetworkStats::new();
        shared.record("submit_task", 100, false);
        shared.record("data_transfer", 1000, true);
        shared.record("submit_task", 50, false);
        shared.record_batch(4);
        shared.record_tcp_write();
        let s = shared.snapshot();
        assert_eq!(s.messages, 3);
        assert_eq!(s.control_bytes, 150);
        assert_eq!(s.data_bytes, 1000);
        assert_eq!(s.count("submit_task"), 2);
        assert_eq!(s.count("data_transfer"), 1);
        assert_eq!(s.batched_commands, 4);
        assert_eq!(s.frames_coalesced, 3);
        assert_eq!(s.tcp_writes, 1);
    }

    #[test]
    fn every_known_tag_owns_a_distinct_slot() {
        for (i, tag) in TAGS.iter().enumerate() {
            assert_eq!(tag_index(tag), i, "tag {tag} maps to the wrong slot");
        }
        assert_eq!(tag_index("definitely_not_a_tag"), OTHER);
    }

    #[test]
    fn unknown_tags_land_in_the_other_bucket() {
        let shared = SharedNetworkStats::new();
        shared.record("mystery", 10, false);
        let s = shared.snapshot();
        assert_eq!(s.count("other"), 1);
        assert_eq!(s.control_bytes, 10);
    }
}
