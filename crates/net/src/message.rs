//! Control-plane and data-plane message types.
//!
//! Messages mirror the three interfaces in Figure 2 of the paper: the driver
//! talks to the controller, the controller talks to workers, and workers talk
//! to each other (data plane) and back to the controller (completion and
//! status reports).
//!
//! Every stream is **job-scoped**: a driver opens a session with
//! [`DriverMessage::OpenJob`], the controller assigns a [`JobId`], and from
//! then on every driver request, every command dispatched to a worker, every
//! completion report, and every data transfer carries that job — one
//! controller and one worker pool serve many mutually isolated jobs at once.

use serde::{Deserialize, Serialize};

use nimbus_core::data::DatasetDef;
use nimbus_core::ids::{
    CommandId, JobId, LogicalPartition, PhysicalObjectId, TemplateId, TransferId, WorkerId,
};
use nimbus_core::task::TaskSpec;
use nimbus_core::template::{InstantiationParams, WorkerInstantiation, WorkerTemplate};
use nimbus_core::Command;

use crate::payload::DataPayload;

/// Identifies a node in the cluster for message addressing.
///
/// The `Ord` impl (variant order, then payload) gives simulation harnesses a
/// stable total order for link keys; nothing semantic depends on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// The primary driver program (the classic single-driver address).
    Driver,
    /// The centralized controller.
    Controller,
    /// A worker node.
    Worker(WorkerId),
    /// An additional driver client: one of many concurrent driver programs
    /// multiplexed onto the same controller, each running its own job.
    Client(u32),
}

impl NodeId {
    /// True for nodes that speak the driver side of the control plane (the
    /// classic [`NodeId::Driver`] or any [`NodeId::Client`] session).
    pub fn is_driver(&self) -> bool {
        matches!(self, NodeId::Driver | NodeId::Client(_))
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Driver => write!(f, "driver"),
            NodeId::Controller => write!(f, "controller"),
            NodeId::Worker(w) => write!(f, "worker-{w}"),
            NodeId::Client(c) => write!(f, "client-{c}"),
        }
    }
}

/// Messages from a driver program to the controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DriverMessage {
    /// Open a session: the controller assigns a fresh [`JobId`] and answers
    /// with [`ControllerToDriver::JobAccepted`]. Every later message of this
    /// session carries the assigned job.
    OpenJob,
    /// End this session's job: the controller releases the job's state on
    /// itself and on the workers and answers `JobTerminated`. The cluster
    /// keeps serving other sessions.
    CloseJob,
    /// Declare a logical dataset and its partitioning.
    DefineDataset(DatasetDef),
    /// Submit one logical task (the non-template path).
    SubmitTask(TaskSpec),
    /// Mark the start of a basic block; the controller starts recording a
    /// controller template under this name.
    StartTemplate {
        /// Basic-block name.
        name: String,
    },
    /// Mark the end of the basic block; the controller finishes and installs
    /// the controller template.
    FinishTemplate {
        /// Basic-block name.
        name: String,
    },
    /// Abandon a recording whose body failed: the controller discards the
    /// partially recorded template (tasks already submitted still run).
    AbortTemplate {
        /// Basic-block name.
        name: String,
    },
    /// Execute a previously installed basic block again.
    InstantiateTemplate {
        /// Basic-block name.
        name: String,
        /// Parameter binding for this execution.
        params: InstantiationParams,
    },
    /// Ask for the current value of a (single-partition) logical object.
    /// Used by data-dependent loops (error thresholds, convergence tests).
    FetchValue {
        /// The partition whose value the driver needs.
        partition: LogicalPartition,
    },
    /// Wait until every outstanding task of this job has completed.
    Barrier,
    /// Enable or disable template usage (used by the evaluation to compare
    /// against the centrally-scheduled baseline).
    EnableTemplates(bool),
    /// Request a checkpoint with an application-level progress marker.
    Checkpoint {
        /// Opaque progress marker (for example the iteration index).
        marker: u64,
    },
    /// Ask the controller to migrate `count` tasks of the named basic block
    /// to different workers on its next instantiation (exercises edits).
    MigrateTasks {
        /// Basic-block name.
        name: String,
        /// Number of tasks to migrate.
        count: usize,
    },
    /// Inform the controller that the cluster manager changed the shared
    /// worker allocation.
    SetWorkerAllocation {
        /// The workers now available to the cluster.
        workers: Vec<WorkerId>,
    },
    /// Simulate an abrupt worker failure (fault-recovery experiments). The
    /// controller recovers every job with state on the failed worker.
    FailWorker {
        /// The worker that failed.
        worker: WorkerId,
    },
    /// Terminate the whole cluster (every job, every worker).
    Shutdown,
}

impl DriverMessage {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            DriverMessage::OpenJob => "open_job",
            DriverMessage::CloseJob => "close_job",
            DriverMessage::DefineDataset(_) => "define_dataset",
            DriverMessage::SubmitTask(_) => "submit_task",
            DriverMessage::StartTemplate { .. } => "start_template",
            DriverMessage::FinishTemplate { .. } => "finish_template",
            DriverMessage::AbortTemplate { .. } => "abort_template",
            DriverMessage::InstantiateTemplate { .. } => "instantiate_template",
            DriverMessage::FetchValue { .. } => "fetch_value",
            DriverMessage::Barrier => "barrier",
            DriverMessage::EnableTemplates(_) => "enable_templates",
            DriverMessage::Checkpoint { .. } => "checkpoint",
            DriverMessage::MigrateTasks { .. } => "migrate_tasks",
            DriverMessage::SetWorkerAllocation { .. } => "set_workers",
            DriverMessage::FailWorker { .. } => "fail_worker",
            DriverMessage::Shutdown => "shutdown",
        }
    }
}

/// Messages from the controller back to a driver program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ControllerToDriver {
    /// The controller accepted an [`DriverMessage::OpenJob`] and assigned
    /// this session its job.
    JobAccepted {
        /// The controller-assigned job identifier.
        job: JobId,
    },
    /// The requested value (scalars only; larger objects stay on workers).
    ValueFetched {
        /// The partition that was read.
        partition: LogicalPartition,
        /// Its current value.
        value: f64,
    },
    /// All outstanding tasks have completed.
    BarrierReached,
    /// A basic block finished recording and its templates are installed.
    TemplateInstalled {
        /// Basic-block name.
        name: String,
    },
    /// A checkpoint committed.
    CheckpointCommitted {
        /// The driver-supplied progress marker.
        marker: u64,
    },
    /// Recovery from a worker failure finished; execution state matches the
    /// checkpoint with this progress marker.
    RecoveryComplete {
        /// The progress marker of the restored checkpoint.
        marker: u64,
    },
    /// The controller accepted a request that needs no data in response.
    Ack,
    /// The controller could not process a request.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// This session's job has terminated.
    JobTerminated,
}

impl ControllerToDriver {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            ControllerToDriver::JobAccepted { .. } => "job_accepted",
            ControllerToDriver::ValueFetched { .. } => "value_fetched",
            ControllerToDriver::BarrierReached => "barrier_reached",
            ControllerToDriver::TemplateInstalled { .. } => "template_installed",
            ControllerToDriver::CheckpointCommitted { .. } => "checkpoint_committed",
            ControllerToDriver::RecoveryComplete { .. } => "recovery_complete",
            ControllerToDriver::Ack => "ack",
            ControllerToDriver::Error { .. } => "error",
            ControllerToDriver::JobTerminated => "job_terminated",
        }
    }
}

/// Messages from the controller to a worker. Commands, templates, fetches,
/// and halts are all scoped to one job: a worker keeps an isolated runtime
/// (store, queue, template cache) per job, so two jobs' physical objects and
/// command identifiers can never collide.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ControllerToWorker {
    /// Execute a batch of concrete commands (the per-task dispatch path,
    /// also used for patches and checkpoint load/save commands).
    ExecuteCommands {
        /// The job these commands belong to.
        job: JobId,
        /// The commands to enqueue.
        commands: Vec<Command>,
    },
    /// Install a worker template in the job's template cache.
    InstallTemplate {
        /// The job the template belongs to.
        job: JobId,
        /// The template to install.
        template: WorkerTemplate,
    },
    /// Instantiate a previously installed worker template.
    InstantiateTemplate {
        /// The job the template belongs to.
        job: JobId,
        /// The instantiation (template id, fresh ids, params, edits).
        inst: WorkerInstantiation,
    },
    /// Read a scalar value out of a physical object and report it back.
    FetchValue {
        /// The job the object belongs to.
        job: JobId,
        /// The object to read.
        object: PhysicalObjectId,
    },
    /// Stop executing this job's commands and flush its queue (fault
    /// recovery). Other jobs on the same worker are untouched.
    Halt {
        /// The job being recovered.
        job: JobId,
    },
    /// Release every resource of a finished job (store, queue, templates).
    DropJob {
        /// The job that ended.
        job: JobId,
    },
    /// The controller accepted this worker's [`WorkerToController::Register`]
    /// and admitted it to the allocation. Carries, per job, the controller's
    /// current version map so the rejoining worker sees the data state it is
    /// joining (Section 4.3: membership changes are template edits, not job
    /// restarts). Migrated partition contents follow separately through the
    /// ordinary send/receive copy path.
    RejoinAccepted {
        /// Per-job version maps, sorted by job then partition for
        /// deterministic encoding.
        jobs: Vec<JobVersions>,
    },
    /// Shut the worker down at the end of the cluster's life.
    Shutdown,
}

/// The version map of one job, as carried by
/// [`ControllerToWorker::RejoinAccepted`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobVersions {
    /// The job these versions belong to.
    pub job: JobId,
    /// Current version of every known logical partition of the job, sorted
    /// by partition.
    pub versions: Vec<PartitionVersion>,
}

/// One `(partition, version)` entry of a job's version map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionVersion {
    /// The logical partition.
    pub partition: LogicalPartition,
    /// Its latest version in program order.
    pub version: u64,
}

impl ControllerToWorker {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            ControllerToWorker::ExecuteCommands { .. } => "execute_commands",
            ControllerToWorker::InstallTemplate { .. } => "install_template",
            ControllerToWorker::InstantiateTemplate { .. } => "instantiate_template",
            ControllerToWorker::FetchValue { .. } => "fetch_value",
            ControllerToWorker::Halt { .. } => "halt",
            ControllerToWorker::DropJob { .. } => "drop_job",
            ControllerToWorker::RejoinAccepted { .. } => "rejoin_accepted",
            ControllerToWorker::Shutdown => "shutdown",
        }
    }
}

/// Messages from a worker to the controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkerToController {
    /// A batch of commands of one job completed on the worker.
    CommandsCompleted {
        /// The job the commands belong to.
        job: JobId,
        /// The reporting worker.
        worker: WorkerId,
        /// The completed command identifiers.
        commands: Vec<CommandId>,
        /// Microseconds of application compute time in this batch.
        compute_micros: u64,
    },
    /// A worker template finished installing.
    TemplateInstalled {
        /// The job the template belongs to.
        job: JobId,
        /// The reporting worker.
        worker: WorkerId,
        /// The installed template.
        template: TemplateId,
    },
    /// The value requested by `FetchValue`.
    ValueFetched {
        /// The job the object belongs to.
        job: JobId,
        /// The reporting worker.
        worker: WorkerId,
        /// The object that was read.
        object: PhysicalObjectId,
        /// Its current scalar value.
        value: f64,
    },
    /// The worker halted one job in response to a `Halt` command.
    Halted {
        /// The job that was halted.
        job: JobId,
        /// The reporting worker.
        worker: WorkerId,
    },
    /// Periodic liveness and load report (job-agnostic).
    Heartbeat {
        /// The reporting worker.
        worker: WorkerId,
        /// Number of commands queued but not yet runnable.
        queued: usize,
        /// Number of commands ready or running.
        ready: usize,
    },
    /// A worker announcing itself to the controller: sent once at startup by
    /// every worker. For workers of the initial allocation this is an
    /// idempotent hello; for a restarted or brand-new worker it opens the
    /// rejoin handshake (the controller answers with
    /// [`ControllerToWorker::RejoinAccepted`] and, mid-job, reinstalls the
    /// worker's patched templates and plans migration edits — per job).
    Register {
        /// The registering worker.
        worker: WorkerId,
    },
}

impl WorkerToController {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            WorkerToController::CommandsCompleted { .. } => "commands_completed",
            WorkerToController::TemplateInstalled { .. } => "worker_template_installed",
            WorkerToController::ValueFetched { .. } => "worker_value_fetched",
            WorkerToController::Halted { .. } => "halted",
            WorkerToController::Heartbeat { .. } => "heartbeat",
            WorkerToController::Register { .. } => "register",
        }
    }
}

/// A worker-to-worker data transfer (the data plane). Transfer identifiers
/// are issued per job, so the job field is part of the routing key.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataTransfer {
    /// The job this transfer belongs to.
    pub job: JobId,
    /// The transfer this payload belongs to (matches a `ReceiveCopy`).
    pub transfer: TransferId,
    /// The sending worker.
    pub from_worker: WorkerId,
    /// The data being moved.
    pub payload: DataPayload,
}

/// Notices generated by the transport itself rather than sent by a node.
/// They never appear on the wire; a transport implementation injects them
/// into the local inbox when it observes a connectivity change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportEvent {
    /// The connection carrying traffic from this peer closed or failed.
    PeerDisconnected(NodeId),
    /// A peer that had previously disconnected delivered traffic again over
    /// a fresh connection. Injected before the first envelope of the new
    /// connection, so a node observes `PeerReconnected` strictly before any
    /// post-rejoin message from that peer.
    PeerReconnected(NodeId),
}

/// Any message carried by the transport.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Driver → controller, scoped to the sending session's job. `JobId(0)`
    /// means "my session's job" and is resolved by the controller's session
    /// table; an explicit id must match the session that sends it.
    Driver {
        /// The sending session's job (zero before/without a handshake).
        job: JobId,
        /// The request.
        msg: DriverMessage,
    },
    /// Controller → driver.
    ToDriver(ControllerToDriver),
    /// Controller → worker.
    ToWorker(ControllerToWorker),
    /// Worker → controller.
    FromWorker(WorkerToController),
    /// Worker → worker data transfer.
    Data(DataTransfer),
    /// Locally generated transport notice (never sent by a node).
    Transport(TransportEvent),
}

impl Message {
    /// Convenience constructor for a job-scoped driver message.
    pub fn driver(job: JobId, msg: DriverMessage) -> Message {
        Message::Driver { job, msg }
    }

    /// A driver message of the implicit session job (`JobId(0)`, resolved by
    /// the controller's session table). What a [`DriverMessage`] sender uses
    /// before — or without — the `OpenJob` handshake.
    pub fn driver0(msg: DriverMessage) -> Message {
        Message::Driver { job: JobId(0), msg }
    }

    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Driver { msg, .. } => msg.tag(),
            Message::ToDriver(m) => m.tag(),
            Message::ToWorker(m) => m.tag(),
            Message::FromWorker(m) => m.tag(),
            Message::Data(_) => "data_transfer",
            Message::Transport(_) => "transport_event",
        }
    }

    /// Returns true if this is a data-plane message.
    pub fn is_data(&self) -> bool {
        matches!(self, Message::Data(_))
    }

    /// Approximate wire size in bytes. Control messages use the counting
    /// codec; data transfers use their payload size plus a small header.
    pub fn wire_size(&self) -> usize {
        match self {
            Message::Driver { .. } => crate::codec::serialized_size(self),
            Message::ToDriver(m) => crate::codec::serialized_size(m),
            Message::ToWorker(m) => crate::codec::serialized_size(m),
            Message::FromWorker(m) => crate::codec::serialized_size(m),
            Message::Data(d) => 32 + d.payload.size(),
            Message::Transport(_) => 0,
        }
    }
}

/// A routed message: sender, recipient, and payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// The sending node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The message.
    pub message: Message,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn node_display() {
        assert_eq!(NodeId::Driver.to_string(), "driver");
        assert_eq!(NodeId::Worker(WorkerId(3)).to_string(), "worker-3");
        assert_eq!(NodeId::Client(2).to_string(), "client-2");
        assert!(NodeId::Driver.is_driver());
        assert!(NodeId::Client(0).is_driver());
        assert!(!NodeId::Controller.is_driver());
        assert!(!NodeId::Worker(WorkerId(0)).is_driver());
    }

    #[test]
    fn tags_cover_variants() {
        assert_eq!(
            Message::Driver {
                job: JobId(1),
                msg: DriverMessage::Barrier
            }
            .tag(),
            "barrier"
        );
        assert_eq!(
            Message::Driver {
                job: JobId(0),
                msg: DriverMessage::OpenJob
            }
            .tag(),
            "open_job"
        );
        assert_eq!(
            Message::FromWorker(WorkerToController::Halted {
                job: JobId(1),
                worker: WorkerId(1)
            })
            .tag(),
            "halted"
        );
        let data = Message::Data(DataTransfer {
            job: JobId(1),
            transfer: TransferId(1),
            from_worker: WorkerId(0),
            payload: DataPayload::Bytes(Bytes::from_static(&[0; 8])),
        });
        assert!(data.is_data());
        assert_eq!(data.tag(), "data_transfer");
        assert_eq!(data.wire_size(), 40);
    }

    #[test]
    fn control_message_wire_size_is_positive_and_scales() {
        let small = Message::Driver {
            job: JobId(1),
            msg: DriverMessage::Barrier,
        };
        let task = nimbus_core::TaskSpec::new(
            nimbus_core::TaskId(1),
            nimbus_core::StageId(1),
            nimbus_core::FunctionId(1),
        );
        let big = Message::Driver {
            job: JobId(1),
            msg: DriverMessage::SubmitTask(task.with_reads(vec![LogicalPartition::default(); 16])),
        };
        assert!(small.wire_size() > 0);
        assert!(big.wire_size() > small.wire_size());
    }
}
