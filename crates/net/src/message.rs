//! Control-plane and data-plane message types.
//!
//! Messages mirror the three interfaces in Figure 2 of the paper: the driver
//! talks to the controller, the controller talks to workers, and workers talk
//! to each other (data plane) and back to the controller (completion and
//! status reports).

use serde::{Deserialize, Serialize};

use nimbus_core::data::DatasetDef;
use nimbus_core::ids::{
    CommandId, LogicalPartition, PhysicalObjectId, TemplateId, TransferId, WorkerId,
};
use nimbus_core::task::TaskSpec;
use nimbus_core::template::{InstantiationParams, WorkerInstantiation, WorkerTemplate};
use nimbus_core::Command;

use crate::payload::DataPayload;

/// Identifies a node in the cluster for message addressing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// The driver program.
    Driver,
    /// The centralized controller.
    Controller,
    /// A worker node.
    Worker(WorkerId),
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeId::Driver => write!(f, "driver"),
            NodeId::Controller => write!(f, "controller"),
            NodeId::Worker(w) => write!(f, "worker-{w}"),
        }
    }
}

/// Messages from the driver program to the controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DriverMessage {
    /// Declare a logical dataset and its partitioning.
    DefineDataset(DatasetDef),
    /// Submit one logical task (the non-template path).
    SubmitTask(TaskSpec),
    /// Mark the start of a basic block; the controller starts recording a
    /// controller template under this name.
    StartTemplate {
        /// Basic-block name.
        name: String,
    },
    /// Mark the end of the basic block; the controller finishes and installs
    /// the controller template.
    FinishTemplate {
        /// Basic-block name.
        name: String,
    },
    /// Abandon a recording whose body failed: the controller discards the
    /// partially recorded template (tasks already submitted still run).
    AbortTemplate {
        /// Basic-block name.
        name: String,
    },
    /// Execute a previously installed basic block again.
    InstantiateTemplate {
        /// Basic-block name.
        name: String,
        /// Parameter binding for this execution.
        params: InstantiationParams,
    },
    /// Ask for the current value of a (single-partition) logical object.
    /// Used by data-dependent loops (error thresholds, convergence tests).
    FetchValue {
        /// The partition whose value the driver needs.
        partition: LogicalPartition,
    },
    /// Wait until every outstanding task has completed.
    Barrier,
    /// Enable or disable template usage (used by the evaluation to compare
    /// against the centrally-scheduled baseline).
    EnableTemplates(bool),
    /// Request a checkpoint with an application-level progress marker.
    Checkpoint {
        /// Opaque progress marker (for example the iteration index).
        marker: u64,
    },
    /// Ask the controller to migrate `count` tasks of the named basic block
    /// to different workers on its next instantiation (exercises edits).
    MigrateTasks {
        /// Basic-block name.
        name: String,
        /// Number of tasks to migrate.
        count: usize,
    },
    /// Inform the controller that the cluster manager changed the job's
    /// worker allocation.
    SetWorkerAllocation {
        /// The workers now available to the job.
        workers: Vec<WorkerId>,
    },
    /// Simulate an abrupt worker failure (fault-recovery experiments). The
    /// controller halts the remaining workers and restores the latest
    /// checkpoint.
    FailWorker {
        /// The worker that failed.
        worker: WorkerId,
    },
    /// Terminate the job.
    Shutdown,
}

impl DriverMessage {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            DriverMessage::DefineDataset(_) => "define_dataset",
            DriverMessage::SubmitTask(_) => "submit_task",
            DriverMessage::StartTemplate { .. } => "start_template",
            DriverMessage::FinishTemplate { .. } => "finish_template",
            DriverMessage::AbortTemplate { .. } => "abort_template",
            DriverMessage::InstantiateTemplate { .. } => "instantiate_template",
            DriverMessage::FetchValue { .. } => "fetch_value",
            DriverMessage::Barrier => "barrier",
            DriverMessage::EnableTemplates(_) => "enable_templates",
            DriverMessage::Checkpoint { .. } => "checkpoint",
            DriverMessage::MigrateTasks { .. } => "migrate_tasks",
            DriverMessage::SetWorkerAllocation { .. } => "set_workers",
            DriverMessage::FailWorker { .. } => "fail_worker",
            DriverMessage::Shutdown => "shutdown",
        }
    }
}

/// Messages from the controller back to the driver program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ControllerToDriver {
    /// The requested value (scalars only; larger objects stay on workers).
    ValueFetched {
        /// The partition that was read.
        partition: LogicalPartition,
        /// Its current value.
        value: f64,
    },
    /// All outstanding tasks have completed.
    BarrierReached,
    /// A basic block finished recording and its templates are installed.
    TemplateInstalled {
        /// Basic-block name.
        name: String,
    },
    /// A checkpoint committed.
    CheckpointCommitted {
        /// The driver-supplied progress marker.
        marker: u64,
    },
    /// Recovery from a worker failure finished; execution state matches the
    /// checkpoint with this progress marker.
    RecoveryComplete {
        /// The progress marker of the restored checkpoint.
        marker: u64,
    },
    /// The controller accepted a request that needs no data in response.
    Ack,
    /// The controller could not process a request.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// The job has terminated and the controller is shutting down.
    JobTerminated,
}

impl ControllerToDriver {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            ControllerToDriver::ValueFetched { .. } => "value_fetched",
            ControllerToDriver::BarrierReached => "barrier_reached",
            ControllerToDriver::TemplateInstalled { .. } => "template_installed",
            ControllerToDriver::CheckpointCommitted { .. } => "checkpoint_committed",
            ControllerToDriver::RecoveryComplete { .. } => "recovery_complete",
            ControllerToDriver::Ack => "ack",
            ControllerToDriver::Error { .. } => "error",
            ControllerToDriver::JobTerminated => "job_terminated",
        }
    }
}

/// Messages from the controller to a worker.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ControllerToWorker {
    /// Execute a batch of concrete commands (the per-task dispatch path,
    /// also used for patches and checkpoint load/save commands).
    ExecuteCommands {
        /// The commands to enqueue.
        commands: Vec<Command>,
    },
    /// Install a worker template in the worker's template cache.
    InstallTemplate {
        /// The template to install.
        template: WorkerTemplate,
    },
    /// Instantiate a previously installed worker template.
    InstantiateTemplate(WorkerInstantiation),
    /// Read a scalar value out of a physical object and report it back.
    FetchValue {
        /// The object to read.
        object: PhysicalObjectId,
    },
    /// Stop executing, flush queues, and acknowledge (fault recovery).
    Halt,
    /// The controller accepted this worker's [`WorkerToController::Register`]
    /// and admitted it to the allocation. Carries the controller's current
    /// version map so the rejoining worker sees the data state it is joining
    /// (Section 4.3: membership changes are template edits, not job
    /// restarts). Migrated partition contents follow separately through the
    /// ordinary send/receive copy path.
    RejoinAccepted {
        /// Current version of every known logical partition, sorted by
        /// partition for deterministic encoding.
        versions: Vec<PartitionVersion>,
    },
    /// Shut the worker down at the end of the job.
    Shutdown,
}

/// One `(partition, version)` entry of the version map a rejoining worker
/// receives in [`ControllerToWorker::RejoinAccepted`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionVersion {
    /// The logical partition.
    pub partition: LogicalPartition,
    /// Its latest version in program order.
    pub version: u64,
}

impl ControllerToWorker {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            ControllerToWorker::ExecuteCommands { .. } => "execute_commands",
            ControllerToWorker::InstallTemplate { .. } => "install_template",
            ControllerToWorker::InstantiateTemplate(_) => "instantiate_template",
            ControllerToWorker::FetchValue { .. } => "fetch_value",
            ControllerToWorker::Halt => "halt",
            ControllerToWorker::RejoinAccepted { .. } => "rejoin_accepted",
            ControllerToWorker::Shutdown => "shutdown",
        }
    }
}

/// Messages from a worker to the controller.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkerToController {
    /// A batch of commands completed on the worker.
    CommandsCompleted {
        /// The reporting worker.
        worker: WorkerId,
        /// The completed command identifiers.
        commands: Vec<CommandId>,
        /// Microseconds of application compute time in this batch.
        compute_micros: u64,
    },
    /// A worker template finished installing.
    TemplateInstalled {
        /// The reporting worker.
        worker: WorkerId,
        /// The installed template.
        template: TemplateId,
    },
    /// The value requested by `FetchValue`.
    ValueFetched {
        /// The reporting worker.
        worker: WorkerId,
        /// The object that was read.
        object: PhysicalObjectId,
        /// Its current scalar value.
        value: f64,
    },
    /// The worker halted in response to a `Halt` command.
    Halted {
        /// The reporting worker.
        worker: WorkerId,
    },
    /// Periodic liveness and load report.
    Heartbeat {
        /// The reporting worker.
        worker: WorkerId,
        /// Number of commands queued but not yet runnable.
        queued: usize,
        /// Number of commands ready or running.
        ready: usize,
    },
    /// A worker announcing itself to the controller: sent once at startup by
    /// every worker. For workers of the initial allocation this is an
    /// idempotent hello; for a restarted or brand-new worker it opens the
    /// rejoin handshake (the controller answers with
    /// [`ControllerToWorker::RejoinAccepted`] and, mid-job, reinstalls the
    /// worker's patched templates and plans migration edits).
    Register {
        /// The registering worker.
        worker: WorkerId,
    },
}

impl WorkerToController {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            WorkerToController::CommandsCompleted { .. } => "commands_completed",
            WorkerToController::TemplateInstalled { .. } => "worker_template_installed",
            WorkerToController::ValueFetched { .. } => "worker_value_fetched",
            WorkerToController::Halted { .. } => "halted",
            WorkerToController::Heartbeat { .. } => "heartbeat",
            WorkerToController::Register { .. } => "register",
        }
    }
}

/// A worker-to-worker data transfer (the data plane).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DataTransfer {
    /// The transfer this payload belongs to (matches a `ReceiveCopy`).
    pub transfer: TransferId,
    /// The sending worker.
    pub from_worker: WorkerId,
    /// The data being moved.
    pub payload: DataPayload,
}

/// Notices generated by the transport itself rather than sent by a node.
/// They never appear on the wire; a transport implementation injects them
/// into the local inbox when it observes a connectivity change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransportEvent {
    /// The connection carrying traffic from this peer closed or failed.
    PeerDisconnected(NodeId),
    /// A peer that had previously disconnected delivered traffic again over
    /// a fresh connection. Injected before the first envelope of the new
    /// connection, so a node observes `PeerReconnected` strictly before any
    /// post-rejoin message from that peer.
    PeerReconnected(NodeId),
}

/// Any message carried by the transport.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Driver → controller.
    Driver(DriverMessage),
    /// Controller → driver.
    ToDriver(ControllerToDriver),
    /// Controller → worker.
    ToWorker(ControllerToWorker),
    /// Worker → controller.
    FromWorker(WorkerToController),
    /// Worker → worker data transfer.
    Data(DataTransfer),
    /// Locally generated transport notice (never sent by a node).
    Transport(TransportEvent),
}

impl Message {
    /// Short tag for statistics.
    pub fn tag(&self) -> &'static str {
        match self {
            Message::Driver(m) => m.tag(),
            Message::ToDriver(m) => m.tag(),
            Message::ToWorker(m) => m.tag(),
            Message::FromWorker(m) => m.tag(),
            Message::Data(_) => "data_transfer",
            Message::Transport(_) => "transport_event",
        }
    }

    /// Returns true if this is a data-plane message.
    pub fn is_data(&self) -> bool {
        matches!(self, Message::Data(_))
    }

    /// Approximate wire size in bytes. Control messages use the counting
    /// codec; data transfers use their payload size plus a small header.
    pub fn wire_size(&self) -> usize {
        match self {
            Message::Driver(m) => crate::codec::serialized_size(m),
            Message::ToDriver(m) => crate::codec::serialized_size(m),
            Message::ToWorker(m) => crate::codec::serialized_size(m),
            Message::FromWorker(m) => crate::codec::serialized_size(m),
            Message::Data(d) => 24 + d.payload.size(),
            Message::Transport(_) => 0,
        }
    }
}

/// A routed message: sender, recipient, and payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Envelope {
    /// The sending node.
    pub from: NodeId,
    /// The receiving node.
    pub to: NodeId,
    /// The message.
    pub message: Message,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn node_display() {
        assert_eq!(NodeId::Driver.to_string(), "driver");
        assert_eq!(NodeId::Worker(WorkerId(3)).to_string(), "worker-3");
    }

    #[test]
    fn tags_cover_variants() {
        assert_eq!(Message::Driver(DriverMessage::Barrier).tag(), "barrier");
        assert_eq!(
            Message::FromWorker(WorkerToController::Halted {
                worker: WorkerId(1)
            })
            .tag(),
            "halted"
        );
        let data = Message::Data(DataTransfer {
            transfer: TransferId(1),
            from_worker: WorkerId(0),
            payload: DataPayload::Bytes(Bytes::from_static(&[0; 8])),
        });
        assert!(data.is_data());
        assert_eq!(data.tag(), "data_transfer");
        assert_eq!(data.wire_size(), 32);
    }

    #[test]
    fn control_message_wire_size_is_positive_and_scales() {
        let small = Message::Driver(DriverMessage::Barrier);
        let task = nimbus_core::TaskSpec::new(
            nimbus_core::TaskId(1),
            nimbus_core::StageId(1),
            nimbus_core::FunctionId(1),
        );
        let big = Message::Driver(DriverMessage::SubmitTask(
            task.with_reads(vec![LogicalPartition::default(); 16]),
        ));
        assert!(small.wire_size() > 0);
        assert!(big.wire_size() > small.wire_size());
    }
}
