//! Process-level diagnostics used by the transport's thread-leak tests.

/// Names of this process's live threads (Linux reads `/proc/self/task`;
/// other platforms return an empty list). Kernel thread names are truncated
/// to 15 bytes, so match on prefixes.
pub fn live_thread_names() -> Vec<String> {
    let mut names = Vec::new();
    if let Ok(tasks) = std::fs::read_dir("/proc/self/task") {
        for task in tasks.flatten() {
            if let Ok(comm) = std::fs::read_to_string(task.path().join("comm")) {
                names.push(comm.trim().to_string());
            }
        }
    }
    names
}

/// Polls until no live thread name starts with `prefix`, up to `timeout`.
/// Returns the surviving names on timeout, or `None` once clear. Transport
/// threads wind down asynchronously within their poll interval, so leak
/// assertions need a bounded wait rather than a single snapshot.
pub fn wait_for_no_thread_with_prefix(
    prefix: &str,
    timeout: std::time::Duration,
) -> Option<Vec<String>> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        let leaked: Vec<String> = live_thread_names()
            .into_iter()
            .filter(|n| n.starts_with(prefix))
            .collect();
        if leaked.is_empty() {
            return None;
        }
        if std::time::Instant::now() >= deadline {
            return Some(leaked);
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
}
