//! Wire framing shared by the TCP transport: single-envelope frames and the
//! multi-envelope *batch frame* that lets a sender flush many queued
//! messages with one `write(2)`.
//!
//! A single frame is a 4-byte little-endian payload length followed by one
//! [`Envelope`] in the compact binary codec. A batch frame reuses the same
//! header with the high bit ([`BATCH_FLAG`]) set; its payload is a sequence
//! of ordinary single frames, concatenated:
//!
//! ```text
//! single:  [len:u32 LE][envelope bytes]
//! batch:   [BATCH_FLAG | len:u32 LE][count:u32 LE][len0][envelope0][len1][envelope1]...
//! ```
//!
//! The explicit `count` makes the batch self-validating: a payload cut at a
//! sub-frame boundary (which would otherwise parse as a valid shorter
//! batch) is rejected because the count no longer matches.
//!
//! The flag bit cannot collide with a legitimate single-frame length because
//! payloads are capped at [`MAX_FRAME`] (64 MiB), far below the flag bit.
//! Batches are parsed *iteratively* — deliberately not as a recursive
//! message variant, so malformed input can never nest batches and blow the
//! decoder's stack — and sub-frames inside a batch must themselves be
//! single frames. Truncated sub-frames, trailing bytes, and empty batches
//! are all rejected as malformed.

use crate::codec::{self, CodecError};
use crate::message::Envelope;
use crate::transport::{NetError, NetResult};

/// Maximum accepted frame payload size (applies to single frames, batch
/// frames as a whole, and every sub-frame of a batch). Anything larger is
/// treated as a malformed peer and the connection is dropped.
pub const MAX_FRAME: usize = 64 << 20;

/// High bit of the frame header marking a batch frame. The remaining 31
/// bits are the payload length, exactly as for a single frame.
pub const BATCH_FLAG: u32 = 1 << 31;

fn codec_err(e: CodecError) -> NetError {
    NetError::Codec(e.to_string())
}

/// Appends one single-envelope frame to `buf`, returning its payload length.
/// The buffer is not cleared: callers reuse one buffer per peer and clear it
/// themselves per flush, so steady-state encoding allocates nothing.
pub fn append_frame(buf: &mut Vec<u8>, envelope: &Envelope) -> NetResult<usize> {
    let payload_len = codec::encode_framed_into(envelope, buf).map_err(codec_err)?;
    if payload_len > MAX_FRAME {
        return Err(NetError::Codec(format!(
            "frame of {payload_len} bytes exceeds MAX_FRAME"
        )));
    }
    Ok(payload_len)
}

/// Appends one batch frame containing `envelopes` (at least two) to `buf`.
/// The whole batch becomes a single contiguous byte run, so the caller can
/// flush it with one `write(2)`.
pub fn append_batch_frame(buf: &mut Vec<u8>, envelopes: &[Envelope]) -> NetResult<()> {
    debug_assert!(envelopes.len() >= 2, "a batch frame carries >= 2 envelopes");
    let count = u32::try_from(envelopes.len())
        .map_err(|_| NetError::Codec("batch envelope count exceeds u32".to_string()))?;
    let start = buf.len();
    buf.extend_from_slice(&[0u8; 4]);
    buf.extend_from_slice(&count.to_le_bytes());
    for envelope in envelopes {
        append_frame(buf, envelope)?;
    }
    let payload_len = buf.len() - start - 4;
    if payload_len > MAX_FRAME {
        return Err(NetError::Codec(format!(
            "batch frame of {payload_len} bytes exceeds MAX_FRAME"
        )));
    }
    let header = BATCH_FLAG | payload_len as u32;
    // nimbus-lint: allow(panic) — patches the 4 header bytes appended above
    buf[start..start + 4].copy_from_slice(&header.to_le_bytes());
    Ok(())
}

/// Splits a batch-frame payload back into its envelopes, in order. Rejects
/// truncated sub-frames, oversized sub-frames, undecodable envelopes,
/// nested batch headers, and empty batches — a reader treats any error as a
/// malformed peer and drops the connection.
pub fn parse_batch(payload: &[u8]) -> Result<Vec<Envelope>, CodecError> {
    let Some(count) = payload.get(..4) else {
        return Err(CodecError::msg("batch frame shorter than its count"));
    };
    let count = count
        .try_into()
        .map(|b| u32::from_le_bytes(b) as usize)
        .map_err(|_| CodecError::msg("internal: batch count slice is not 4 bytes"))?;
    // Every sub-frame occupies at least its 4-byte header, so a count that
    // cannot fit the remaining bytes is rejected up front...
    if count.saturating_mul(4) > payload.len() - 4 {
        return Err(CodecError::msg(format!(
            "batch count {count} exceeds {} payload bytes",
            payload.len() - 4
        )));
    }
    // ...but the count is still attacker-controlled (a large frame can
    // claim millions of tiny sub-frames), so the pre-allocation is capped:
    // a lying count costs normal Vec growth, never a multi-GB reservation.
    let mut envelopes = Vec::with_capacity(count.min(1024));
    let mut pos = 4usize;
    while pos < payload.len() {
        let Some(header) = payload.get(pos..pos + 4) else {
            return Err(CodecError::msg("truncated sub-frame header in batch"));
        };
        let header = header
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| CodecError::msg("internal: sub-frame header slice is not 4 bytes"))?;
        if header & BATCH_FLAG != 0 {
            return Err(CodecError::msg("nested batch frame"));
        }
        let len = header as usize;
        if len > MAX_FRAME {
            return Err(CodecError::msg(format!(
                "sub-frame of {len} bytes exceeds MAX_FRAME"
            )));
        }
        let Some(bytes) = payload.get(pos + 4..pos + 4 + len) else {
            return Err(CodecError::msg(format!(
                "sub-frame of {len} bytes truncated at offset {pos}"
            )));
        };
        envelopes.push(codec::decode::<Envelope>(bytes)?);
        pos += 4 + len;
    }
    if envelopes.is_empty() {
        return Err(CodecError::msg("empty batch frame"));
    }
    if envelopes.len() != count {
        return Err(CodecError::msg(format!(
            "batch count {count} does not match its {} envelopes",
            envelopes.len()
        )));
    }
    Ok(envelopes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{DriverMessage, Message, NodeId};

    fn envelope(marker: u64) -> Envelope {
        Envelope {
            from: NodeId::Driver,
            to: NodeId::Controller,
            message: Message::driver0(DriverMessage::Checkpoint { marker }),
        }
    }

    #[test]
    fn batch_frame_roundtrips_in_order() {
        let envelopes: Vec<Envelope> = (0..5).map(envelope).collect();
        let mut buf = Vec::new();
        append_batch_frame(&mut buf, &envelopes).unwrap();
        let header = u32::from_le_bytes(buf[..4].try_into().unwrap());
        assert_ne!(header & BATCH_FLAG, 0, "batch header carries the flag");
        let payload_len = (header & !BATCH_FLAG) as usize;
        assert_eq!(payload_len, buf.len() - 4);
        let parsed = parse_batch(&buf[4..]).unwrap();
        assert_eq!(parsed, envelopes);
    }

    #[test]
    fn batch_sub_frames_match_single_frames_byte_for_byte() {
        let e = envelope(7);
        let mut single = Vec::new();
        append_frame(&mut single, &e).unwrap();
        let mut batch = Vec::new();
        append_batch_frame(&mut batch, &[e.clone(), e]).unwrap();
        assert_eq!(&batch[4..8], 2u32.to_le_bytes(), "envelope count");
        assert_eq!(&batch[8..8 + single.len()], single.as_slice());
        assert_eq!(&batch[8 + single.len()..], single.as_slice());
    }

    #[test]
    fn truncated_batches_are_rejected_at_every_cut() {
        let envelopes: Vec<Envelope> = (0..3).map(envelope).collect();
        let mut buf = Vec::new();
        append_batch_frame(&mut buf, &envelopes).unwrap();
        let payload = &buf[4..];
        for cut in 1..payload.len() {
            assert!(
                parse_batch(&payload[..payload.len() - cut]).is_err(),
                "batch payload cut by {cut} bytes parsed"
            );
        }
    }

    #[test]
    fn garbage_and_pathological_batches_are_rejected() {
        // Empty payload (shorter than the count).
        assert!(parse_batch(&[]).is_err());
        // A count the remaining bytes cannot possibly satisfy.
        let mut absurd = Vec::new();
        absurd.extend_from_slice(&u32::MAX.to_le_bytes());
        absurd.extend_from_slice(&[0u8; 8]);
        assert!(parse_batch(&absurd).is_err());
        // Sub-frame header claiming more bytes than remain.
        let mut huge = Vec::new();
        huge.extend_from_slice(&1u32.to_le_bytes());
        huge.extend_from_slice(&100u32.to_le_bytes());
        huge.extend_from_slice(&[0u8; 8]);
        assert!(parse_batch(&huge).is_err());
        // Nested batch header.
        let mut nested = Vec::new();
        nested.extend_from_slice(&1u32.to_le_bytes());
        nested.extend_from_slice(&(BATCH_FLAG | 4).to_le_bytes());
        nested.extend_from_slice(&[0u8; 4]);
        assert!(parse_batch(&nested).is_err());
        // Undecodable envelope bytes in a well-sized sub-frame.
        let mut garbage = Vec::new();
        garbage.extend_from_slice(&1u32.to_le_bytes());
        garbage.extend_from_slice(&4u32.to_le_bytes());
        garbage.extend_from_slice(&[0xff, 0xff, 0xff, 0xff]);
        assert!(parse_batch(&garbage).is_err());
        // Trailing bytes after the counted sub-frames.
        let mut trailing = Vec::new();
        trailing.extend_from_slice(&1u32.to_le_bytes());
        append_frame(&mut trailing, &envelope(1)).unwrap();
        trailing.push(0);
        assert!(parse_batch(&trailing).is_err());
        // A count smaller than the sub-frames actually present.
        let mut undercount = Vec::new();
        undercount.extend_from_slice(&1u32.to_le_bytes());
        append_frame(&mut undercount, &envelope(1)).unwrap();
        append_frame(&mut undercount, &envelope(2)).unwrap();
        assert!(parse_batch(&undercount).is_err());
    }

    #[test]
    fn append_frame_reuses_the_buffer_without_clearing() {
        let mut buf = Vec::new();
        append_frame(&mut buf, &envelope(1)).unwrap();
        let first = buf.len();
        append_frame(&mut buf, &envelope(2)).unwrap();
        assert!(buf.len() > first, "second frame appended after the first");
        let cap = {
            buf.clear();
            buf.capacity()
        };
        append_frame(&mut buf, &envelope(3)).unwrap();
        assert_eq!(buf.capacity(), cap, "steady-state reuse must not grow");
    }
}
