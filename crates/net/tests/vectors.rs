//! Golden wire-format vectors: one committed encoding per `Message` variant
//! (every nested enum variant counted individually, same 43-variant census
//! as `roundtrip.rs`), plus framed `Envelope` vectors for each node-id form.
//!
//! `roundtrip.rs` proves the codec agrees with *itself*; these vectors pin
//! the codec to *bytes on disk*, so any change to the wire format — field
//! order, integer widths, enum discriminants, framing — fails loudly even
//! if it roundtrips perfectly. That is the conformance contract a rejoining
//! worker from an older build relies on.
//!
//! Inputs are hand-written literals (no RNG), so the vectors depend on
//! nothing but this file and the codec. To regenerate after an intentional
//! format change:
//!
//! ```text
//! NIMBUS_REGEN_VECTORS=1 cargo test -p nimbus-net --test vectors
//! ```
//!
//! and commit the rewritten `tests/vectors/*.bin` together with the change.

use std::fs;
use std::path::PathBuf;

use nimbus_core::data::DatasetDef;
use nimbus_core::ids::{
    CommandId, FunctionId, JobId, LogicalObjectId, LogicalPartition, PartitionIndex,
    PhysicalObjectId, StageId, TaskId, TemplateId, TransferId, WorkerId,
};
use nimbus_core::task::TaskSpec;
use nimbus_core::template::{
    InstantiationParams, SkeletonEntry, SkeletonKind, TemplateEdit, WorkerInstantiation,
    WorkerTemplate,
};
use nimbus_core::{Command, CommandKind, TaskParams};
use nimbus_net::{
    decode, encode, serialized_size, ControllerToDriver, ControllerToWorker, DataPayload,
    DataTransfer, DriverMessage, Envelope, JobVersions, Message, NodeId, PartitionVersion,
    TransportEvent, WorkerToController,
};

/// Mirrors `roundtrip.rs`: total `Message` variants, nested enums included.
const MESSAGE_VARIANTS: u32 = 43;

fn lp(object: u64, partition: u32) -> LogicalPartition {
    LogicalPartition::new(LogicalObjectId(object), PartitionIndex(partition))
}

fn task_spec() -> TaskSpec {
    TaskSpec::new(TaskId(9001), StageId(7), FunctionId(3))
        .with_reads(vec![lp(1, 0), lp(1, 1)])
        .with_writes(vec![lp(2, 0)])
        .with_params(TaskParams::from_f64s(&[1.5, -2.25]))
        .with_preferred_worker(WorkerId(1))
}

fn commands() -> Vec<Command> {
    vec![
        Command::new(
            CommandId(100),
            CommandKind::CreateData {
                object: PhysicalObjectId(11),
                logical: lp(1, 0),
            },
        ),
        Command::new(
            CommandId(101),
            CommandKind::DestroyData {
                object: PhysicalObjectId(11),
            },
        ),
        Command::new(
            CommandId(102),
            CommandKind::LocalCopy {
                from: PhysicalObjectId(11),
                to: PhysicalObjectId(12),
            },
        )
        .with_before(vec![CommandId(100), CommandId(101)]),
        Command::new(
            CommandId(103),
            CommandKind::SendCopy {
                from: PhysicalObjectId(12),
                to_worker: WorkerId(2),
                transfer: TransferId(55),
            },
        ),
        Command::new(
            CommandId(104),
            CommandKind::ReceiveCopy {
                to: PhysicalObjectId(13),
                from_worker: WorkerId(0),
                transfer: TransferId(55),
            },
        ),
        Command::new(
            CommandId(105),
            CommandKind::LoadData {
                object: PhysicalObjectId(13),
                key: "ckpt/3/p0".to_string(),
            },
        ),
        Command::new(
            CommandId(106),
            CommandKind::SaveData {
                object: PhysicalObjectId(13),
                key: "ckpt/4/p0".to_string(),
            },
        ),
        Command::new(
            CommandId(107),
            CommandKind::RunTask {
                function: FunctionId(3),
                task: TaskId(9001),
            },
        )
        .with_before(vec![CommandId(104)]),
    ]
}

/// One entry per `SkeletonKind`, each exercising the optional entry fields.
fn worker_template() -> WorkerTemplate {
    let entries = vec![
        SkeletonEntry::new(SkeletonKind::CreateData {
            object: PhysicalObjectId(21),
            logical: lp(1, 0),
        }),
        SkeletonEntry::new(SkeletonKind::LocalCopy {
            from: PhysicalObjectId(21),
            to: PhysicalObjectId(22),
        })
        .with_reads(vec![PhysicalObjectId(21)])
        .with_writes(vec![PhysicalObjectId(22)])
        .with_before(vec![0]),
        SkeletonEntry::new(SkeletonKind::SendCopy {
            from: PhysicalObjectId(22),
            to_worker: WorkerId(1),
            transfer_slot: 0,
        })
        .with_reads(vec![PhysicalObjectId(22)])
        .with_before(vec![1]),
        SkeletonEntry::new(SkeletonKind::ReceiveCopy {
            to: PhysicalObjectId(23),
            from_worker: WorkerId(1),
            transfer_slot: 1,
        })
        .with_writes(vec![PhysicalObjectId(23)]),
        SkeletonEntry::new(SkeletonKind::LoadData {
            object: PhysicalObjectId(23),
            key: "ckpt/2/p1".to_string(),
        })
        .with_before(vec![3]),
        SkeletonEntry::new(SkeletonKind::SaveData {
            object: PhysicalObjectId(23),
            key: "ckpt/3/p1".to_string(),
        })
        .with_before(vec![4]),
        SkeletonEntry::new(SkeletonKind::RunTask {
            function: FunctionId(3),
            task_slot: 0,
        })
        .with_reads(vec![PhysicalObjectId(21)])
        .with_writes(vec![PhysicalObjectId(23)])
        .with_default_params(TaskParams::from_f64s(&[0.5]))
        .with_param_slot(0)
        .with_before(vec![5]),
        SkeletonEntry::new(SkeletonKind::DestroyData {
            object: PhysicalObjectId(22),
        })
        .with_before(vec![6]),
        SkeletonEntry::new(SkeletonKind::Nop),
    ];
    WorkerTemplate::new(TemplateId(4), TemplateId(3), WorkerId(0), entries)
        .expect("entries only reference earlier indices")
}

fn worker_instantiation() -> WorkerInstantiation {
    WorkerInstantiation {
        template: TemplateId(4),
        base_command_id: 2000,
        base_transfer_id: 300,
        task_ids: vec![TaskId(9002), TaskId(9003)],
        params: vec![TaskParams::from_f64s(&[2.0]), TaskParams::empty()],
        edits: vec![
            TemplateEdit::RemoveEntry { index: 8 },
            TemplateEdit::AddEntry {
                entry: SkeletonEntry::new(SkeletonKind::Nop),
            },
            TemplateEdit::ReplaceEntry {
                index: 2,
                entry: SkeletonEntry::new(SkeletonKind::ReceiveCopy {
                    to: PhysicalObjectId(22),
                    from_worker: WorkerId(2),
                    transfer_slot: 2,
                })
                .with_writes(vec![PhysicalObjectId(22)]),
            },
        ],
    }
}

/// Every `DriverMessage` variant, by the same index as `roundtrip.rs`.
fn driver_message(which: u32) -> DriverMessage {
    match which {
        0 => {
            DriverMessage::DefineDataset(DatasetDef::new(LogicalObjectId(1), "data".to_string(), 8))
        }
        1 => DriverMessage::SubmitTask(task_spec()),
        2 => DriverMessage::StartTemplate {
            name: "inner".to_string(),
        },
        3 => DriverMessage::FinishTemplate {
            name: "inner".to_string(),
        },
        4 => DriverMessage::AbortTemplate {
            name: "inner".to_string(),
        },
        5 => DriverMessage::InstantiateTemplate {
            name: "inner".to_string(),
            params: InstantiationParams::PerStage(
                [(StageId(7), TaskParams::from_f64s(&[1.0]))]
                    .into_iter()
                    .collect(),
            ),
        },
        6 => DriverMessage::FetchValue {
            partition: lp(2, 0),
        },
        7 => DriverMessage::Barrier,
        8 => DriverMessage::EnableTemplates(true),
        9 => DriverMessage::Checkpoint { marker: 6 },
        10 => DriverMessage::MigrateTasks {
            name: "inner".to_string(),
            count: 2,
        },
        11 => DriverMessage::SetWorkerAllocation {
            workers: vec![WorkerId(0), WorkerId(2)],
        },
        12 => DriverMessage::FailWorker {
            worker: WorkerId(1),
        },
        13 => DriverMessage::Shutdown,
        14 => DriverMessage::OpenJob,
        _ => DriverMessage::CloseJob,
    }
}

/// Every `ControllerToDriver` variant, by index.
fn controller_to_driver(which: u32) -> ControllerToDriver {
    match which {
        0 => ControllerToDriver::ValueFetched {
            partition: lp(2, 0),
            value: 320.0,
        },
        1 => ControllerToDriver::BarrierReached,
        2 => ControllerToDriver::TemplateInstalled {
            name: "inner".to_string(),
        },
        3 => ControllerToDriver::CheckpointCommitted { marker: 6 },
        4 => ControllerToDriver::RecoveryComplete { marker: 4 },
        5 => ControllerToDriver::Ack,
        6 => ControllerToDriver::Error {
            message: "no checkpoint available for recovery".to_string(),
        },
        7 => ControllerToDriver::JobTerminated,
        _ => ControllerToDriver::JobAccepted { job: JobId(1) },
    }
}

/// Every `ControllerToWorker` variant, by index.
fn controller_to_worker(which: u32) -> ControllerToWorker {
    match which {
        0 => ControllerToWorker::ExecuteCommands {
            job: JobId(1),
            commands: commands(),
        },
        1 => ControllerToWorker::InstallTemplate {
            job: JobId(1),
            template: worker_template(),
        },
        2 => ControllerToWorker::InstantiateTemplate {
            job: JobId(1),
            inst: worker_instantiation(),
        },
        3 => ControllerToWorker::FetchValue {
            job: JobId(1),
            object: PhysicalObjectId(23),
        },
        4 => ControllerToWorker::Halt { job: JobId(1) },
        5 => ControllerToWorker::RejoinAccepted {
            jobs: vec![JobVersions {
                job: JobId(1),
                versions: vec![
                    PartitionVersion {
                        partition: lp(1, 0),
                        version: 5,
                    },
                    PartitionVersion {
                        partition: lp(2, 0),
                        version: 5,
                    },
                ],
            }],
        },
        6 => ControllerToWorker::Shutdown,
        7 => ControllerToWorker::DropJob { job: JobId(1) },
        _ => ControllerToWorker::Shutdown,
    }
}

/// Every `WorkerToController` variant, by index.
fn worker_to_controller(which: u32) -> WorkerToController {
    match which {
        0 => WorkerToController::CommandsCompleted {
            job: JobId(1),
            worker: WorkerId(0),
            commands: vec![CommandId(100), CommandId(102), CommandId(107)],
            compute_micros: 1500,
        },
        1 => WorkerToController::TemplateInstalled {
            job: JobId(1),
            worker: WorkerId(0),
            template: TemplateId(4),
        },
        2 => WorkerToController::ValueFetched {
            job: JobId(1),
            worker: WorkerId(0),
            object: PhysicalObjectId(23),
            value: 320.0,
        },
        3 => WorkerToController::Halted {
            job: JobId(1),
            worker: WorkerId(2),
        },
        4 => WorkerToController::Heartbeat {
            worker: WorkerId(0),
            queued: 3,
            ready: 1,
        },
        _ => WorkerToController::Register {
            worker: WorkerId(1),
        },
    }
}

/// Every `Message` variant with hand-pinned contents, same census and index
/// layout as `roundtrip.rs::message`.
fn vector_message(which: u32) -> Message {
    match which {
        w @ 0..=15 => Message::Driver {
            job: JobId(1),
            msg: driver_message(w),
        },
        w @ 16..=24 => Message::ToDriver(controller_to_driver(w - 16)),
        w @ 25..=33 => Message::ToWorker(controller_to_worker(w - 25)),
        w @ 34..=39 => Message::FromWorker(worker_to_controller(w - 34)),
        40 => Message::Data(DataTransfer {
            job: JobId(1),
            transfer: TransferId(55),
            from_worker: WorkerId(0),
            payload: DataPayload::Bytes(bytes::Bytes::from(
                (0u8..32).map(|b| b.wrapping_mul(7)).collect::<Vec<u8>>(),
            )),
        }),
        41 => Message::Transport(TransportEvent::PeerDisconnected(NodeId::Worker(WorkerId(
            1,
        )))),
        _ => Message::Transport(TransportEvent::PeerReconnected(NodeId::Client(2))),
    }
}

/// The envelope vectors: one per node-id form on each side.
fn vector_envelopes() -> Vec<(&'static str, Envelope)> {
    vec![
        (
            "driver-controller",
            Envelope {
                from: NodeId::Driver,
                to: NodeId::Controller,
                message: vector_message(7),
            },
        ),
        (
            "controller-worker",
            Envelope {
                from: NodeId::Controller,
                to: NodeId::Worker(WorkerId(1)),
                message: vector_message(29),
            },
        ),
        (
            "client-controller",
            Envelope {
                from: NodeId::Client(3),
                to: NodeId::Controller,
                message: vector_message(14),
            },
        ),
    ]
}

fn vectors_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/vectors")
}

fn regen() -> bool {
    std::env::var("NIMBUS_REGEN_VECTORS").is_ok()
}

fn check_vector(name: &str, encoded: &[u8]) -> Option<String> {
    let path = vectors_dir().join(name);
    if regen() {
        fs::create_dir_all(vectors_dir()).expect("create vectors dir");
        fs::write(&path, encoded).expect("write vector");
        eprintln!("regenerated {}", path.display());
        return None;
    }
    let golden = match fs::read(&path) {
        Ok(bytes) => bytes,
        Err(e) => {
            return Some(format!(
                "{name}: cannot read golden vector ({e}); \
                 run NIMBUS_REGEN_VECTORS=1 cargo test -p nimbus-net --test vectors"
            ))
        }
    };
    if golden != encoded {
        return Some(format!(
            "{name}: encoding drifted from the committed vector \
             ({} golden bytes vs {} encoded); if the wire-format change is \
             intentional, regenerate with NIMBUS_REGEN_VECTORS=1",
            golden.len(),
            encoded.len()
        ));
    }
    None
}

/// Every message variant's encoding matches its committed vector byte for
/// byte, decodes back to the identical message, and sizes correctly.
#[test]
fn message_vectors_are_byte_stable() {
    let mut drift: Vec<String> = Vec::new();
    for which in 0..MESSAGE_VARIANTS {
        let m = vector_message(which);
        let encoded = encode(&m).expect("encode");
        assert_eq!(
            encoded.len(),
            serialized_size(&m),
            "variant {which} ({}): length diverges from the counting codec",
            m.tag()
        );
        assert_eq!(
            decode::<Message>(&encoded).expect("decode"),
            m,
            "variant {which} ({})",
            m.tag()
        );
        let name = format!("msg-{which:02}-{}.bin", m.tag());
        drift.extend(check_vector(&name, &encoded));
    }
    assert!(drift.is_empty(), "{}", drift.join("\n"));
}

/// Envelope framing (the actual on-wire unit) is byte-stable for every
/// node-id form.
#[test]
fn envelope_vectors_are_byte_stable() {
    let mut drift: Vec<String> = Vec::new();
    for (label, envelope) in vector_envelopes() {
        let encoded = encode(&envelope).expect("encode");
        assert_eq!(encoded.len(), serialized_size(&envelope), "{label}");
        assert_eq!(
            decode::<Envelope>(&encoded).expect("decode"),
            envelope,
            "{label}"
        );
        drift.extend(check_vector(&format!("env-{label}.bin"), &encoded));
    }
    assert!(drift.is_empty(), "{}", drift.join("\n"));
}

/// The census here must stay in lockstep with `roundtrip.rs`: every variant
/// index must construct a *distinct* message (tags repeat across nested
/// enums — e.g. `fetch_value` exists driver→controller and
/// controller→worker — but the messages themselves may not), so a newly
/// added variant cannot silently alias an existing vector slot. Index 31
/// is the one deliberate duplicate: `ControllerToWorker` has 8 real
/// variants against 9 index slots, so both 31 and 33 pin `Shutdown`.
#[test]
fn vector_census_covers_distinct_variants() {
    let messages: Vec<Message> = (0..MESSAGE_VARIANTS).map(vector_message).collect();
    let mut duplicates = Vec::new();
    for (i, a) in messages.iter().enumerate() {
        for (j, b) in messages.iter().enumerate().skip(i + 1) {
            if a == b {
                duplicates.push((i, j));
            }
        }
    }
    assert_eq!(
        duplicates,
        vec![(31, 33)],
        "unexpected aliasing between vector slots"
    );
}
