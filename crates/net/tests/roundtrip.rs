//! Wire-codec property tests: for every `Message`/`Envelope` variant,
//! `decode(encode(m)) == m` and `encode(m).len() == serialized_size(&m)`.
//!
//! The second property is what pins the byte accounting used by all paper
//! figures to the real wire format: `serialized_size` is the counting
//! serializer the evaluation has always used, and the encoder must never
//! drift from it.
//!
//! Like `core/tests/properties.rs`, these are proptest-style properties run
//! over a fixed number of cases from the workspace's seeded deterministic
//! generator; failures print their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use nimbus_core::data::DatasetDef;
use nimbus_core::ids::{
    CommandId, FunctionId, JobId, LogicalObjectId, LogicalPartition, PartitionIndex,
    PhysicalObjectId, StageId, TaskId, TemplateId, TransferId, WorkerId,
};
use nimbus_core::task::TaskSpec;
use nimbus_core::template::{
    InstantiationParams, SkeletonEntry, SkeletonKind, TemplateEdit, WorkerInstantiation,
    WorkerTemplate,
};
use nimbus_core::{Command, CommandKind, TaskParams};
use nimbus_net::{
    decode, encode, serialized_size, ControllerToDriver, ControllerToWorker, DataPayload,
    DataTransfer, DriverMessage, Envelope, JobVersions, Message, NodeId, PartitionVersion,
    TransportEvent, WorkerToController,
};

const CASES: u64 = 32;

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

fn string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..12);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0u32..26) as u8))
        .collect()
}

fn params(rng: &mut StdRng) -> TaskParams {
    match rng.gen_range(0u32..3) {
        0 => TaskParams::empty(),
        1 => {
            let values: Vec<f64> = (0..rng.gen_range(0usize..6))
                .map(|_| rng.gen_range(-1e6..1e6))
                .collect();
            TaskParams::from_f64s(&values)
        }
        _ => {
            let values: Vec<u64> = (0..rng.gen_range(0usize..6))
                .map(|_| rng.gen_range(0usize..1 << 40) as u64)
                .collect();
            TaskParams::from_u64s(&values)
        }
    }
}

fn lp(rng: &mut StdRng) -> LogicalPartition {
    LogicalPartition::new(
        LogicalObjectId(rng.gen_range(0usize..1 << 20) as u64),
        PartitionIndex(rng.gen_range(0usize..1 << 10) as u32),
    )
}

fn worker(rng: &mut StdRng) -> WorkerId {
    WorkerId(rng.gen_range(0usize..64) as u32)
}

fn jid(rng: &mut StdRng) -> JobId {
    JobId(rng.gen_range(0usize..8) as u64)
}

fn oid(rng: &mut StdRng) -> PhysicalObjectId {
    PhysicalObjectId(rng.gen_range(0usize..1 << 30) as u64)
}

fn task_spec(rng: &mut StdRng) -> TaskSpec {
    let mut spec = TaskSpec::new(
        TaskId(rng.gen_range(0usize..1 << 30) as u64),
        StageId(rng.gen_range(0usize..1 << 20) as u64),
        FunctionId(rng.gen_range(0usize..64) as u32),
    )
    .with_reads((0..rng.gen_range(0usize..4)).map(|_| lp(rng)).collect())
    .with_writes((0..rng.gen_range(0usize..4)).map(|_| lp(rng)).collect())
    .with_params(params(rng));
    if rng.gen_range(0u32..2) == 0 {
        spec = spec.with_preferred_worker(worker(rng));
    }
    spec
}

/// One of each `CommandKind`, cycling through `which`.
fn command_kind(rng: &mut StdRng, which: u32) -> CommandKind {
    match which % 8 {
        0 => CommandKind::CreateData {
            object: oid(rng),
            logical: lp(rng),
        },
        1 => CommandKind::DestroyData { object: oid(rng) },
        2 => CommandKind::LocalCopy {
            from: oid(rng),
            to: oid(rng),
        },
        3 => CommandKind::SendCopy {
            from: oid(rng),
            to_worker: worker(rng),
            transfer: TransferId(rng.gen_range(0usize..1 << 20) as u64),
        },
        4 => CommandKind::ReceiveCopy {
            to: oid(rng),
            from_worker: worker(rng),
            transfer: TransferId(rng.gen_range(0usize..1 << 20) as u64),
        },
        5 => CommandKind::LoadData {
            object: oid(rng),
            key: string(rng),
        },
        6 => CommandKind::SaveData {
            object: oid(rng),
            key: string(rng),
        },
        _ => CommandKind::RunTask {
            function: FunctionId(rng.gen_range(0usize..64) as u32),
            task: TaskId(rng.gen_range(0usize..1 << 30) as u64),
        },
    }
}

fn command(rng: &mut StdRng, which: u32) -> Command {
    Command::new(
        CommandId(rng.gen_range(0usize..1 << 30) as u64),
        command_kind(rng, which),
    )
    .with_before(
        (0..rng.gen_range(0usize..3))
            .map(|_| CommandId(rng.gen_range(0usize..1 << 20) as u64))
            .collect(),
    )
}

/// One of each `SkeletonKind`, cycling through `which`.
fn skeleton_kind(rng: &mut StdRng, which: u32) -> SkeletonKind {
    match which % 9 {
        0 => SkeletonKind::CreateData {
            object: oid(rng),
            logical: lp(rng),
        },
        1 => SkeletonKind::DestroyData { object: oid(rng) },
        2 => SkeletonKind::LocalCopy {
            from: oid(rng),
            to: oid(rng),
        },
        3 => SkeletonKind::SendCopy {
            from: oid(rng),
            to_worker: worker(rng),
            transfer_slot: rng.gen_range(0usize..8),
        },
        4 => SkeletonKind::ReceiveCopy {
            to: oid(rng),
            from_worker: worker(rng),
            transfer_slot: rng.gen_range(0usize..8),
        },
        5 => SkeletonKind::LoadData {
            object: oid(rng),
            key: string(rng),
        },
        6 => SkeletonKind::SaveData {
            object: oid(rng),
            key: string(rng),
        },
        7 => SkeletonKind::RunTask {
            function: FunctionId(rng.gen_range(0usize..64) as u32),
            task_slot: rng.gen_range(0usize..8),
        },
        _ => SkeletonKind::Nop,
    }
}

fn skeleton_entry(rng: &mut StdRng, index: usize, which: u32) -> SkeletonEntry {
    let mut entry = SkeletonEntry::new(skeleton_kind(rng, which))
        .with_reads((0..rng.gen_range(0usize..3)).map(|_| oid(rng)).collect())
        .with_writes((0..rng.gen_range(0usize..3)).map(|_| oid(rng)).collect())
        .with_default_params(params(rng));
    if index > 0 {
        entry = entry.with_before(vec![rng.gen_range(0usize..index)]);
    }
    if rng.gen_range(0u32..2) == 0 {
        entry = entry.with_param_slot(rng.gen_range(0usize..4));
    }
    entry
}

fn worker_template(rng: &mut StdRng) -> WorkerTemplate {
    let entries: Vec<SkeletonEntry> = (0..rng.gen_range(1usize..6))
        .map(|i| {
            let which = rng.gen_range(0u32..9);
            skeleton_entry(rng, i, which)
        })
        .collect();
    WorkerTemplate::new(
        TemplateId(rng.gen_range(0usize..1 << 20) as u64),
        TemplateId(rng.gen_range(0usize..1 << 20) as u64),
        worker(rng),
        entries,
    )
    .expect("generated entries only reference earlier indices")
}

fn template_edit(rng: &mut StdRng, which: u32) -> TemplateEdit {
    match which % 3 {
        0 => TemplateEdit::RemoveEntry {
            index: rng.gen_range(0usize..8),
        },
        1 => TemplateEdit::ReplaceEntry {
            index: rng.gen_range(0usize..8),
            entry: {
                let which = rng.gen_range(0u32..9);
                skeleton_entry(rng, 0, which)
            },
        },
        _ => TemplateEdit::AddEntry {
            entry: {
                let which = rng.gen_range(0u32..9);
                skeleton_entry(rng, 0, which)
            },
        },
    }
}

fn worker_instantiation(rng: &mut StdRng) -> WorkerInstantiation {
    WorkerInstantiation {
        template: TemplateId(rng.gen_range(0usize..1 << 20) as u64),
        base_command_id: rng.gen_range(0usize..1 << 30) as u64,
        base_transfer_id: rng.gen_range(0usize..1 << 30) as u64,
        task_ids: (0..rng.gen_range(0usize..4))
            .map(|_| TaskId(rng.gen_range(0usize..1 << 30) as u64))
            .collect(),
        params: (0..rng.gen_range(0usize..4)).map(|_| params(rng)).collect(),
        edits: (0..rng.gen_range(0usize..3))
            .map(|i| template_edit(rng, i as u32))
            .collect(),
    }
}

fn instantiation_params(rng: &mut StdRng, which: u32) -> InstantiationParams {
    match which % 3 {
        0 => InstantiationParams::Defaults,
        1 => InstantiationParams::PerTask(
            (0..rng.gen_range(0usize..4)).map(|_| params(rng)).collect(),
        ),
        _ => {
            let mut map = std::collections::HashMap::new();
            for _ in 0..rng.gen_range(0usize..3) {
                map.insert(StageId(rng.gen_range(0usize..64) as u64), params(rng));
            }
            InstantiationParams::PerStage(map)
        }
    }
}

fn node(rng: &mut StdRng) -> NodeId {
    match rng.gen_range(0u32..4) {
        0 => NodeId::Driver,
        1 => NodeId::Controller,
        2 => NodeId::Client(rng.gen_range(0usize..16) as u32),
        _ => NodeId::Worker(worker(rng)),
    }
}

/// Every `DriverMessage` variant, by index.
fn driver_message(rng: &mut StdRng, which: u32) -> DriverMessage {
    match which % 16 {
        14 => DriverMessage::OpenJob,
        15 => DriverMessage::CloseJob,
        0 => DriverMessage::DefineDataset(DatasetDef::new(
            LogicalObjectId(rng.gen_range(0usize..1 << 20) as u64),
            string(rng),
            rng.gen_range(0usize..64) as u32 + 1,
        )),
        1 => DriverMessage::SubmitTask(task_spec(rng)),
        2 => DriverMessage::StartTemplate { name: string(rng) },
        3 => DriverMessage::FinishTemplate { name: string(rng) },
        4 => DriverMessage::AbortTemplate { name: string(rng) },
        5 => DriverMessage::InstantiateTemplate {
            name: string(rng),
            params: {
                let which = rng.gen_range(0u32..3);
                instantiation_params(rng, which)
            },
        },
        6 => DriverMessage::FetchValue { partition: lp(rng) },
        7 => DriverMessage::Barrier,
        8 => DriverMessage::EnableTemplates(rng.gen_range(0u32..2) == 0),
        9 => DriverMessage::Checkpoint {
            marker: rng.gen_range(0usize..1 << 30) as u64,
        },
        10 => DriverMessage::MigrateTasks {
            name: string(rng),
            count: rng.gen_range(0usize..8),
        },
        11 => DriverMessage::SetWorkerAllocation {
            workers: (0..rng.gen_range(1usize..5)).map(|_| worker(rng)).collect(),
        },
        12 => DriverMessage::FailWorker {
            worker: worker(rng),
        },
        _ => DriverMessage::Shutdown,
    }
}

/// Every `ControllerToDriver` variant, by index.
fn controller_to_driver(rng: &mut StdRng, which: u32) -> ControllerToDriver {
    match which % 9 {
        8 => ControllerToDriver::JobAccepted { job: jid(rng) },
        0 => ControllerToDriver::ValueFetched {
            partition: lp(rng),
            value: rng.gen_range(-1e9..1e9),
        },
        1 => ControllerToDriver::BarrierReached,
        2 => ControllerToDriver::TemplateInstalled { name: string(rng) },
        3 => ControllerToDriver::CheckpointCommitted {
            marker: rng.gen_range(0usize..1 << 30) as u64,
        },
        4 => ControllerToDriver::RecoveryComplete {
            marker: rng.gen_range(0usize..1 << 30) as u64,
        },
        5 => ControllerToDriver::Ack,
        6 => ControllerToDriver::Error {
            message: string(rng),
        },
        _ => ControllerToDriver::JobTerminated,
    }
}

/// Every `ControllerToWorker` variant, by index.
fn controller_to_worker(rng: &mut StdRng, which: u32) -> ControllerToWorker {
    match which % 9 {
        0 => ControllerToWorker::ExecuteCommands {
            job: jid(rng),
            commands: (0..rng.gen_range(1usize..4))
                .map(|i| command(rng, which + i as u32))
                .collect(),
        },
        1 => ControllerToWorker::InstallTemplate {
            job: jid(rng),
            template: worker_template(rng),
        },
        2 => ControllerToWorker::InstantiateTemplate {
            job: jid(rng),
            inst: worker_instantiation(rng),
        },
        3 => ControllerToWorker::FetchValue {
            job: jid(rng),
            object: oid(rng),
        },
        4 => ControllerToWorker::Halt { job: jid(rng) },
        5 => ControllerToWorker::RejoinAccepted {
            jobs: (0..rng.gen_range(0usize..3))
                .map(|_| JobVersions {
                    job: jid(rng),
                    versions: (0..rng.gen_range(0usize..6))
                        .map(|_| PartitionVersion {
                            partition: lp(rng),
                            version: rng.gen_range(0usize..1 << 30) as u64,
                        })
                        .collect(),
                })
                .collect(),
        },
        7 => ControllerToWorker::DropJob { job: jid(rng) },
        _ => ControllerToWorker::Shutdown,
    }
}

/// Every `WorkerToController` variant, by index.
fn worker_to_controller(rng: &mut StdRng, which: u32) -> WorkerToController {
    match which % 6 {
        0 => WorkerToController::CommandsCompleted {
            job: jid(rng),
            worker: worker(rng),
            commands: (0..rng.gen_range(0usize..5))
                .map(|_| CommandId(rng.gen_range(0usize..1 << 30) as u64))
                .collect(),
            compute_micros: rng.gen_range(0usize..1 << 30) as u64,
        },
        1 => WorkerToController::TemplateInstalled {
            job: jid(rng),
            worker: worker(rng),
            template: TemplateId(rng.gen_range(0usize..1 << 20) as u64),
        },
        2 => WorkerToController::ValueFetched {
            job: jid(rng),
            worker: worker(rng),
            object: oid(rng),
            value: rng.gen_range(-1e9..1e9),
        },
        3 => WorkerToController::Halted {
            job: jid(rng),
            worker: worker(rng),
        },
        4 => WorkerToController::Heartbeat {
            worker: worker(rng),
            queued: rng.gen_range(0usize..1024),
            ready: rng.gen_range(0usize..1024),
        },
        _ => WorkerToController::Register {
            worker: worker(rng),
        },
    }
}

fn data_message(rng: &mut StdRng) -> Message {
    let len = rng.gen_range(0usize..64);
    let contents: Vec<u8> = (0..len).map(|_| rng.gen_range(0usize..256) as u8).collect();
    Message::Data(DataTransfer {
        job: jid(rng),
        transfer: TransferId(rng.gen_range(0usize..1 << 20) as u64),
        from_worker: worker(rng),
        payload: DataPayload::Bytes(bytes::Bytes::copy_from_slice(&contents)),
    })
}

/// Total number of `Message` variants `message` cycles through (all nested
/// enum variants counted individually).
const MESSAGE_VARIANTS: u32 = 43;

/// Every `Message` variant, cycling through all nested variants.
fn message(rng: &mut StdRng, which: u32) -> Message {
    match which % MESSAGE_VARIANTS {
        w @ 0..=15 => Message::Driver {
            job: jid(rng),
            msg: driver_message(rng, w),
        },
        w @ 16..=24 => Message::ToDriver(controller_to_driver(rng, w - 16)),
        w @ 25..=33 => Message::ToWorker(controller_to_worker(rng, w - 25)),
        w @ 34..=39 => Message::FromWorker(worker_to_controller(rng, w - 34)),
        40 => data_message(rng),
        41 => Message::Transport(TransportEvent::PeerDisconnected(node(rng))),
        _ => Message::Transport(TransportEvent::PeerReconnected(node(rng))),
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

fn assert_roundtrip(m: &Message, seed: u64, which: u32) {
    let bytes = encode(m).unwrap_or_else(|e| panic!("seed {seed} variant {which}: encode: {e}"));
    assert_eq!(
        bytes.len(),
        serialized_size(m),
        "seed {seed} variant {which} ({}): encoded length diverges from the counting codec",
        m.tag()
    );
    let back: Message = decode(&bytes)
        .unwrap_or_else(|e| panic!("seed {seed} variant {which} ({}): decode: {e}", m.tag()));
    assert_eq!(&back, m, "seed {seed} variant {which} ({})", m.tag());
}

/// `decode(encode(m)) == m` and `encode(m).len() == serialized_size(&m)` for
/// every message variant (all nested enum variants covered by construction).
#[test]
fn every_message_variant_roundtrips_at_its_counted_size() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        for which in 0..MESSAGE_VARIANTS {
            let m = message(&mut rng, which);
            assert_roundtrip(&m, seed, which);
        }
    }
}

/// Envelopes (the actual framed unit on the TCP wire) roundtrip too.
#[test]
fn envelopes_roundtrip_at_their_counted_size() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        for which in 0..MESSAGE_VARIANTS {
            let envelope = Envelope {
                from: node(&mut rng),
                to: node(&mut rng),
                message: message(&mut rng, which),
            };
            let bytes = encode(&envelope).unwrap();
            assert_eq!(bytes.len(), serialized_size(&envelope), "seed {seed}");
            assert_eq!(decode::<Envelope>(&bytes).unwrap(), envelope, "seed {seed}");
        }
    }
}

/// In-process object payloads encode to the same bytes their `to_wire`
/// produces, and decode as the `Bytes` variant (the canonical wire form).
#[test]
fn object_payloads_canonicalize_to_bytes() {
    use nimbus_core::appdata::VecF64;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..rng.gen_range(0usize..16))
            .map(|_| rng.gen_range(-1e6..1e6))
            .collect();
        let object_form = Message::Data(DataTransfer {
            job: JobId(3),
            transfer: TransferId(7),
            from_worker: WorkerId(1),
            payload: DataPayload::Object(Box::new(VecF64::new(values.clone()))),
        });
        let bytes_form = Message::Data(DataTransfer {
            job: JobId(3),
            transfer: TransferId(7),
            from_worker: WorkerId(1),
            payload: DataPayload::Bytes(bytes::Bytes::from_vec(
                values.iter().flat_map(|v| v.to_le_bytes()).collect(),
            )),
        });
        let encoded = encode(&object_form).unwrap();
        assert_eq!(encoded, encode(&bytes_form).unwrap(), "seed {seed}");
        assert_eq!(
            decode::<Message>(&encoded).unwrap(),
            bytes_form,
            "seed {seed}"
        );
        // PartialEq follows the wire representation, so both forms agree.
        assert_eq!(object_form, bytes_form, "seed {seed}");
    }
}

/// No prefix of a valid encoding decodes (frames are all-or-nothing), and
/// none of them panics the decoder.
#[test]
fn truncated_encodings_error_cleanly() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let which = rng.gen_range(0usize..MESSAGE_VARIANTS as usize) as u32;
        let m = message(&mut rng, which);
        let bytes = encode(&m).unwrap();
        for cut in 0..bytes.len() {
            assert!(
                decode::<Message>(&bytes[..cut]).is_err(),
                "seed {seed}: {cut}-byte prefix of a {}-byte encoding decoded",
                bytes.len()
            );
        }
    }
}

/// Random byte soup never panics the decoder.
#[test]
fn random_garbage_never_panics() {
    for seed in 0..CASES * 8 {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..128);
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0usize..256) as u8).collect();
        let _ = decode::<Message>(&garbage);
        let _ = decode::<Envelope>(&garbage);
    }
}

/// The buffer-reuse encoder is byte-identical to the allocating one, for
/// every message variant, including when appending to a dirty buffer.
#[test]
fn encode_into_matches_encode_for_every_variant() {
    let mut buf = Vec::new();
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        for which in 0..MESSAGE_VARIANTS {
            let m = message(&mut rng, which);
            let fresh = encode(&m).unwrap();
            buf.clear();
            nimbus_net::encode_into(&m, &mut buf).unwrap();
            assert_eq!(buf, fresh, "seed {seed} variant {which} ({})", m.tag());
            // Appending after existing contents leaves them untouched.
            let prefix_len = buf.len();
            nimbus_net::encode_into(&m, &mut buf).unwrap();
            assert_eq!(&buf[..prefix_len], fresh.as_slice(), "seed {seed}");
            assert_eq!(&buf[prefix_len..], fresh.as_slice(), "seed {seed}");
        }
    }
}

/// Batch frames roundtrip every message variant in order, and every
/// truncation of the batch payload is rejected rather than silently parsed
/// as a shorter batch.
#[test]
fn batch_frames_roundtrip_and_reject_truncation() {
    use nimbus_net::framing::{append_batch_frame, parse_batch, BATCH_FLAG};
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let count = rng.gen_range(2usize..8);
        let mut envelopes = Vec::with_capacity(count);
        for _ in 0..count {
            let which = rng.gen_range(0u32..MESSAGE_VARIANTS);
            envelopes.push(Envelope {
                from: node(&mut rng),
                to: node(&mut rng),
                message: message(&mut rng, which),
            });
        }
        let mut buf = Vec::new();
        append_batch_frame(&mut buf, &envelopes).unwrap();
        let header = u32::from_le_bytes(buf[..4].try_into().unwrap());
        assert_ne!(header & BATCH_FLAG, 0, "seed {seed}: flag missing");
        assert_eq!(
            (header & !BATCH_FLAG) as usize,
            buf.len() - 4,
            "seed {seed}"
        );
        let payload = &buf[4..];
        assert_eq!(parse_batch(payload).unwrap(), envelopes, "seed {seed}");
        for cut in 1..payload.len() {
            assert!(
                parse_batch(&payload[..payload.len() - cut]).is_err(),
                "seed {seed}: batch cut by {cut} bytes parsed"
            );
        }
    }
}

/// Garbage batch payloads never panic the parser.
#[test]
fn garbage_batch_payloads_never_panic() {
    use nimbus_net::framing::parse_batch;
    for seed in 0..CASES * 8 {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0usize..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect();
        let _ = parse_batch(&bytes); // must not panic
    }
}

/// Every tag any message can produce owns a dedicated stats slot: no
/// control-plane traffic is ever folded into the "other" bucket.
#[test]
fn every_message_tag_has_a_stats_slot() {
    use nimbus_net::stats::TAGS;
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        for which in 0..MESSAGE_VARIANTS {
            let m = message(&mut rng, which);
            assert!(
                TAGS.contains(&m.tag()),
                "tag {} has no dedicated stats slot",
                m.tag()
            );
        }
    }
}
