//! Cluster configuration and application setup.

use std::sync::Arc;
use std::time::Duration;

use nimbus_controller::AssignmentPolicy;
use nimbus_core::appdata::AppData;
use nimbus_core::ids::{FunctionId, LogicalObjectId, LogicalPartition};
use nimbus_net::LatencyModel;
use nimbus_worker::{DataFactoryRegistry, FunctionRegistry, TaskContext};

/// Which message fabric the cluster's nodes communicate over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process channels: fast and deterministic, the configuration used
    /// by unit tests and microbenchmarks.
    #[default]
    InProcess,
    /// Length-prefix-framed TCP over loopback sockets: every node still runs
    /// as a thread of this process, but every message crosses a real socket
    /// through the wire codec. Multi-process deployments use the
    /// `nimbus-controller` / `nimbus-worker` binaries instead.
    TcpLoopback,
}

/// Static configuration of a cluster.
#[derive(Clone)]
pub struct ClusterConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// The message fabric connecting driver, controller, and workers.
    pub transport: TransportKind,
    /// Network latency model applied to every message (in-process transport
    /// only; TCP latency is whatever the sockets deliver).
    pub latency: LatencyModel,
    /// Whether execution templates are enabled at start.
    pub enable_templates: bool,
    /// Optional artificial task duration (spin-wait), matching the paper's
    /// equal-duration methodology for cross-framework comparisons.
    pub spin_wait: Option<Duration>,
    /// Automatically checkpoint after this many template instantiations.
    pub checkpoint_every: Option<u64>,
    /// Partition assignment policy.
    pub policy: AssignmentPolicy,
    /// Worker completion-report batch size.
    pub completion_batch: usize,
    /// How long the controller waits for a failed worker to rejoin before
    /// recovering onto the survivors (TCP transports; `None` recovers
    /// immediately, the pre-rejoin behavior).
    pub rejoin_grace: Option<Duration>,
    /// Whether the controller corks hot-path sends into one batched send
    /// per worker per flush (the default). Disabled, every control message
    /// is its own transport send — the pre-batching wire behavior, kept as
    /// a measurable baseline for `fig8_real_throughput`.
    pub batch_sends: bool,
}

impl ClusterConfig {
    /// A cluster with `workers` workers, templates enabled, no latency,
    /// in-process transport.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            transport: TransportKind::InProcess,
            latency: LatencyModel::None,
            enable_templates: true,
            spin_wait: None,
            checkpoint_every: None,
            policy: AssignmentPolicy::hash(),
            completion_batch: 64,
            rejoin_grace: None,
            batch_sends: true,
        }
    }

    /// Disables execution templates (the centrally-scheduled baseline).
    pub fn without_templates(mut self) -> Self {
        self.enable_templates = false;
        self
    }

    /// Runs every node over loopback TCP sockets instead of in-process
    /// channels (all nodes remain threads of this process).
    pub fn with_tcp_transport(mut self) -> Self {
        self.transport = TransportKind::TcpLoopback;
        self
    }

    /// Sets a fixed one-way message latency.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = LatencyModel::Fixed(latency);
        self
    }

    /// Sets the artificial per-task spin-wait duration.
    pub fn with_spin_wait(mut self, duration: Duration) -> Self {
        self.spin_wait = Some(duration);
        self
    }

    /// Enables automatic checkpoints every `n` template instantiations.
    pub fn with_checkpoint_every(mut self, n: u64) -> Self {
        self.checkpoint_every = Some(n);
        self
    }

    /// Makes the controller wait up to `grace` for a failed worker to rejoin
    /// before recovering without it.
    pub fn with_rejoin_grace(mut self, grace: Duration) -> Self {
        self.rejoin_grace = Some(grace);
        self
    }

    /// Disables control-plane send batching: one transport send (and, on
    /// TCP, one `write(2)`) per message. This is the pre-batching wire
    /// behavior; message contents and per-worker ordering are identical to
    /// the batched path, so it exists purely as the measurable baseline of
    /// the real-runtime throughput bench.
    pub fn with_per_message_control_plane(mut self) -> Self {
        self.batch_sends = false;
        self
    }
}

/// The application side of cluster setup: registered task functions and
/// dataset factories, shared by every worker.
///
/// Built either as a consuming chain:
///
/// ```ignore
/// let setup = AppSetup::new()
///     .function(ADD, "add", |ctx| { /* ... */ Ok(()) })
///     .object(LogicalObjectId(1), |_| VecF64::zeros(8));
/// ```
///
/// or incrementally through [`AppSetup::register_function`] /
/// [`AppSetup::register_object`] when registration is split across helpers.
#[derive(Default)]
pub struct AppSetup {
    functions: FunctionRegistry,
    factories: DataFactoryRegistry,
}

impl AppSetup {
    /// Creates an empty setup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a task function under `id` (consuming-builder form).
    pub fn function(
        mut self,
        id: FunctionId,
        name: impl Into<String>,
        f: impl Fn(&mut TaskContext<'_>) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        self.register_function(id, name, f);
        self
    }

    /// Registers the initial-contents factory of the dataset `object`
    /// (consuming-builder form). The factory's concrete return type `T` is
    /// what `Dataset<T>` asserts at definition time and what task functions
    /// downcast to with `read::<T>` / `write::<T>`.
    pub fn object<T: AppData>(
        mut self,
        object: LogicalObjectId,
        init: impl Fn(LogicalPartition) -> T + Send + Sync + 'static,
    ) -> Self {
        self.register_object(object, init);
        self
    }

    /// Registers a task function under `id`.
    pub fn register_function(
        &mut self,
        id: FunctionId,
        name: impl Into<String>,
        f: impl Fn(&mut TaskContext<'_>) -> Result<(), String> + Send + Sync + 'static,
    ) -> &mut Self {
        self.functions.register(id, name, f);
        self
    }

    /// Registers the initial-contents factory of the dataset `object`.
    pub fn register_object<T: AppData>(
        &mut self,
        object: LogicalObjectId,
        init: impl Fn(LogicalPartition) -> T + Send + Sync + 'static,
    ) -> &mut Self {
        self.factories
            .register(object, Box::new(move |lp| Box::new(init(lp))));
        self
    }

    /// Read access to the registered functions.
    pub fn functions(&self) -> &FunctionRegistry {
        &self.functions
    }

    /// Read access to the registered dataset factories.
    pub fn factories(&self) -> &DataFactoryRegistry {
        &self.factories
    }

    /// Finalizes the setup into shared registries.
    pub fn into_shared(self) -> (Arc<FunctionRegistry>, Arc<DataFactoryRegistry>) {
        (Arc::new(self.functions), Arc::new(self.factories))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let c = ClusterConfig::new(4)
            .without_templates()
            .with_latency(Duration::from_micros(50))
            .with_spin_wait(Duration::from_micros(100))
            .with_checkpoint_every(5);
        assert_eq!(c.workers, 4);
        assert!(!c.enable_templates);
        assert_eq!(c.latency, LatencyModel::Fixed(Duration::from_micros(50)));
        assert_eq!(c.spin_wait, Some(Duration::from_micros(100)));
        assert_eq!(c.checkpoint_every, Some(5));
    }
}
