//! # nimbus-runtime
//!
//! The single-process Nimbus cluster: one controller thread, N worker
//! threads, and a synchronous driver handle, connected either by the
//! in-process `nimbus-net` transport or by loopback TCP sockets
//! ([`config::TransportKind`]). This is the substrate the examples,
//! integration tests, and microbenchmarks (Tables 1–3 of the paper) run on.
//!
//! Multi-process deployments use the `nimbus-controller` and `nimbus-worker`
//! binaries, which wire the same controller/worker nodes over a shared TCP
//! address map instead of threads.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod config;
pub mod multiproc;
pub mod quickstart;

pub use cluster::{Cluster, ClusterReport};
pub use config::{AppSetup, ClusterConfig, TransportKind};
