//! # nimbus-runtime
//!
//! The in-process Nimbus cluster: one controller thread, N worker threads,
//! and a synchronous driver handle, all connected by the `nimbus-net`
//! transport. This is the substrate the examples, integration tests, and
//! microbenchmarks (Tables 1–3 of the paper) run on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod config;

pub use cluster::{Cluster, ClusterReport};
pub use config::{AppSetup, ClusterConfig};
