//! The single-process Nimbus cluster: controller and worker threads wired
//! over a selectable transport (in-process channels or loopback TCP), plus
//! synchronous driver handles.
//!
//! The cluster is **multi-tenant**: [`Cluster::connect_driver`] opens any
//! number of independent [`Session`]s against the one controller — each its
//! own job, isolated from the others — while [`Cluster::run_driver`] keeps
//! the classic single-driver shape.
//!
//! Worker membership is *elastic*: [`Cluster::add_worker`] grows a running
//! cluster, and [`Cluster::kill_worker`] / [`Cluster::rejoin_worker`]
//! emulate the death and restart of a worker process on **either**
//! transport — over TCP the dropped sockets carry the disconnect notice;
//! in-process the fabric injects the same notice through
//! [`Network::disconnect`] — the pair the membership-churn tests and the
//! fig9 rejoin bench are built on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use nimbus_controller::{Controller, ControllerConfig};
use nimbus_core::ids::WorkerId;
use nimbus_core::ControlPlaneStats;
use nimbus_driver::{DriverContext, DriverError, DriverResult, Session};
use nimbus_net::{Network, NetworkStats, NodeId, TcpFabric, TransportEndpoint};
use nimbus_worker::{
    DataFactoryRegistry, FunctionRegistry, ObjectVault, Worker, WorkerConfig, WorkerStats,
};

use crate::config::{AppSetup, ClusterConfig, TransportKind};

/// The message fabric a running cluster was started on.
enum Fabric {
    InProcess(Network),
    Tcp(TcpFabric),
}

impl Fabric {
    fn stats(&self) -> NetworkStats {
        match self {
            Fabric::InProcess(network) => network.stats(),
            Fabric::Tcp(fabric) => fabric.stats(),
        }
    }
}

/// Everything the cluster reports after a job finishes.
pub struct ClusterReport<T> {
    /// The value returned by the driver program.
    pub output: T,
    /// Control-plane statistics accumulated by the controller.
    pub controller: ControlPlaneStats,
    /// Per-worker execution statistics (including workers killed mid-job).
    pub workers: Vec<WorkerStats>,
    /// Transport traffic statistics.
    pub network: NetworkStats,
}

/// One worker thread of the cluster: its join handle (absent once killed or
/// joined) and the abrupt-death switch fault injection flips.
struct WorkerSlot {
    id: WorkerId,
    handle: Option<JoinHandle<WorkerStats>>,
    kill: Arc<AtomicBool>,
}

/// A running single-process cluster (threads over either transport).
pub struct Cluster {
    fabric: Fabric,
    controller: Option<JoinHandle<ControlPlaneStats>>,
    workers: Vec<WorkerSlot>,
    /// Stats of workers killed (and joined) before the job ended.
    reaped: Vec<WorkerStats>,
    vault: Arc<ObjectVault>,
    functions: Arc<FunctionRegistry>,
    factories: Arc<DataFactoryRegistry>,
    spin_wait: Option<Duration>,
    completion_batch: usize,
    worker_ids: Vec<WorkerId>,
    /// Number of additional driver clients handed out by
    /// [`Cluster::connect_driver`] (each gets its own `NodeId::Client`).
    clients: u32,
}

impl Cluster {
    /// Starts a cluster: spawns the controller and `config.workers` worker
    /// threads, all connected over the configured transport (fresh
    /// in-process network, or one loopback TCP socket per node).
    pub fn start(config: ClusterConfig, setup: AppSetup) -> Self {
        assert!(config.workers > 0, "a cluster needs at least one worker");
        let vault = Arc::new(ObjectVault::new());
        let (functions, factories) = setup.into_shared();

        let worker_ids: Vec<WorkerId> = (0..config.workers as u32).map(WorkerId).collect();

        let fabric = match config.transport {
            TransportKind::InProcess => Fabric::InProcess(Network::new(config.latency)),
            TransportKind::TcpLoopback => {
                let mut nodes = vec![NodeId::Controller, NodeId::Driver];
                nodes.extend(worker_ids.iter().map(|id| NodeId::Worker(*id)));
                Fabric::Tcp(TcpFabric::bind_loopback(&nodes).expect("bind loopback fabric"))
            }
        };

        let mut cluster = Self {
            fabric,
            controller: None,
            workers: Vec::with_capacity(config.workers),
            reaped: Vec::new(),
            vault,
            functions,
            factories,
            spin_wait: config.spin_wait,
            completion_batch: config.completion_batch,
            worker_ids: worker_ids.clone(),
            clients: 0,
        };

        // Workers first so the controller can address them immediately.
        for id in &worker_ids {
            let slot = cluster.spawn_worker_slot(*id);
            cluster.workers.push(slot);
        }

        let mut controller_config = ControllerConfig::new(worker_ids);
        controller_config.policy = config.policy.clone();
        controller_config.enable_templates = config.enable_templates;
        controller_config.checkpoint_every = config.checkpoint_every;
        controller_config.rejoin_grace = config.rejoin_grace;
        controller_config.batch_sends = config.batch_sends;
        let controller_handle = match &cluster.fabric {
            Fabric::InProcess(network) => spawn_controller(Controller::new(
                controller_config,
                network.register(NodeId::Controller),
            )),
            Fabric::Tcp(tcp) => {
                let endpoint = tcp
                    .endpoint(NodeId::Controller)
                    .expect("bind controller endpoint");
                spawn_controller(Controller::new(controller_config, endpoint))
            }
        };
        cluster.controller = Some(controller_handle);
        cluster
    }

    fn spawn_worker_slot(&self, id: WorkerId) -> WorkerSlot {
        let kill = Arc::new(AtomicBool::new(false));
        let mut worker_config = WorkerConfig::new(
            id,
            Arc::clone(&self.functions),
            Arc::clone(&self.factories),
            Arc::clone(&self.vault),
        );
        worker_config.spin_wait = self.spin_wait;
        worker_config.completion_batch = self.completion_batch;
        worker_config.kill_switch = Some(Arc::clone(&kill));
        let handle = match &self.fabric {
            Fabric::InProcess(network) => {
                let worker = Worker::new(worker_config, network.register(NodeId::Worker(id)));
                spawn_worker(id, worker)
            }
            Fabric::Tcp(tcp) => {
                let endpoint = tcp
                    .endpoint(NodeId::Worker(id))
                    .expect("bind worker endpoint");
                spawn_worker(id, Worker::new(worker_config, endpoint))
            }
        };
        WorkerSlot {
            id,
            handle: Some(handle),
            kill,
        }
    }

    /// Adds a brand-new worker to the running cluster. The worker registers
    /// with the controller on startup and is admitted elastically: templates
    /// grow a member for it through edits, and its share of partitions
    /// migrates over through the patch copy path. Returns the new worker's
    /// id.
    pub fn add_worker(&mut self) -> WorkerId {
        let id = WorkerId(
            self.worker_ids
                .iter()
                .map(|w| w.raw() + 1)
                .max()
                .unwrap_or(0),
        );
        if let Fabric::Tcp(tcp) = &self.fabric {
            tcp.add_loopback_node(NodeId::Worker(id))
                .expect("bind listener for added worker");
        }
        let slot = self.spawn_worker_slot(id);
        self.workers.push(slot);
        self.worker_ids.push(id);
        id
    }

    /// Kills a worker abruptly: the worker thread stops without any
    /// goodbye, its endpoint drops, and the controller observes the death
    /// exactly as it would a killed OS process — over TCP through the
    /// transport's own disconnect notice; in-process through the fabric's
    /// injectable [`Network::disconnect`] failure, which unregisters the
    /// node and delivers the same `PeerDisconnected` notice to every peer.
    ///
    /// # Panics
    ///
    /// Panics if the worker is unknown or already dead.
    pub fn kill_worker(&mut self, id: WorkerId) {
        let slot = self
            .workers
            .iter_mut()
            .find(|s| s.id == id)
            .unwrap_or_else(|| panic!("unknown worker {id}"));
        let handle = slot.handle.take().expect("worker already dead");
        slot.kill.store(true, Ordering::Relaxed);
        let stats = handle.join().expect("killed worker thread panicked");
        self.reaped.push(stats);
        if let Fabric::InProcess(network) = &self.fabric {
            // The in-process fabric has no sockets to sever; inject the
            // failure so the controller observes the death the same way.
            network.disconnect(NodeId::Worker(id));
        }
    }

    /// Restarts a previously killed worker under the same identity: a fresh
    /// worker thread re-binds the worker's fabric address (like a restarted
    /// process would) and registers with the controller, driving the rejoin
    /// handshake — reinstalled templates, reloaded partitions, zero
    /// re-recordings.
    ///
    /// # Panics
    ///
    /// Panics if the worker is unknown or still alive.
    pub fn rejoin_worker(&mut self, id: WorkerId) {
        let slot_exists = self
            .workers
            .iter()
            .find(|s| s.id == id)
            .unwrap_or_else(|| panic!("unknown worker {id}"));
        assert!(
            slot_exists.handle.is_none(),
            "worker {id} is still alive; kill it first"
        );
        let fresh = self.spawn_worker_slot(id);
        let slot = self
            .workers
            .iter_mut()
            .find(|s| s.id == id)
            .expect("checked above");
        *slot = fresh;
    }

    /// The identifiers of the cluster's workers (killed ones included).
    pub fn worker_ids(&self) -> &[WorkerId] {
        &self.worker_ids
    }

    /// The shared durable-storage vault (useful for inspecting checkpoints).
    pub fn vault(&self) -> Arc<ObjectVault> {
        Arc::clone(&self.vault)
    }

    /// Snapshot of the transport traffic counters.
    pub fn network_stats(&self) -> NetworkStats {
        self.fabric.stats()
    }

    /// Creates the classic (implicit-session) driver context connected to
    /// this cluster, addressed as the primary `NodeId::Driver`.
    ///
    /// On the in-process transport this can be called repeatedly (each call
    /// re-registers the driver node). On a TCP cluster the driver's listener
    /// exists once, so a second call while the first context is alive
    /// panics with an address-in-use error. For concurrent drivers use
    /// [`Cluster::connect_driver`], which hands out independent sessions.
    pub fn driver(&self) -> DriverContext {
        match &self.fabric {
            Fabric::InProcess(network) => DriverContext::new(network.register(NodeId::Driver)),
            Fabric::Tcp(tcp) => {
                DriverContext::new(tcp.endpoint(NodeId::Driver).expect(
                    "bind driver endpoint (only one TCP driver context can exist at a time)",
                ))
            }
        }
    }

    /// Opens an independent driver [`Session`] against the running
    /// controller: each call gets its own client address and its own
    /// controller-assigned job, fully isolated from every other session.
    /// Sessions are `Send`, so drivers can run concurrently from separate
    /// threads. End a session with [`Session::close`]; once every session
    /// is done, stop the cluster with [`Cluster::shutdown_and_join`] (or a
    /// final session's [`Session::shutdown`]).
    pub fn connect_driver(&mut self) -> DriverResult<Session> {
        self.clients += 1;
        let node = NodeId::Client(self.clients);
        match &self.fabric {
            Fabric::InProcess(network) => Session::connect(network.register(node)),
            Fabric::Tcp(tcp) => {
                tcp.add_loopback_node(node)
                    .map_err(|e| DriverError::Net(e.to_string()))?;
                let endpoint = tcp
                    .endpoint(node)
                    .map_err(|e| DriverError::Net(e.to_string()))?;
                Session::connect(endpoint)
            }
        }
    }

    /// Shuts the whole cluster down (a multi-driver run's counterpart to the
    /// shutdown `run_driver` performs): opens one last control session,
    /// broadcasts the cluster-wide shutdown through it, and joins every
    /// thread. Returns the statistics blocks.
    pub fn shutdown_and_join(mut self) -> DriverResult<ClusterReport<()>> {
        let mut control = self.connect_driver()?;
        control.shutdown()?;
        self.join(())
    }

    /// Runs a driver program to completion, shuts the cluster down, and
    /// returns the driver's output together with every statistics block.
    /// The body also receives `&mut Cluster` so it can churn membership
    /// (kill, rejoin, add workers) mid-job.
    pub fn run_driver_with_cluster<T>(
        mut self,
        body: impl FnOnce(&mut DriverContext, &mut Cluster) -> DriverResult<T>,
    ) -> DriverResult<ClusterReport<T>> {
        let mut driver = self.driver();
        let result = body(&mut driver, &mut self);
        // Always attempt an orderly shutdown so threads exit even on error.
        let shutdown = driver.shutdown();
        let output = result?;
        shutdown?;
        self.join(output)
    }

    /// Runs a driver program to completion, shuts the cluster down, and
    /// returns the driver's output together with every statistics block.
    pub fn run_driver<T>(
        self,
        body: impl FnOnce(&mut DriverContext) -> DriverResult<T>,
    ) -> DriverResult<ClusterReport<T>> {
        self.run_driver_with_cluster(|ctx, _cluster| body(ctx))
    }

    /// Joins all threads after the driver has shut the job down.
    fn join<T>(mut self, output: T) -> DriverResult<ClusterReport<T>> {
        let controller = self
            .controller
            .take()
            .expect("controller handle present")
            .join()
            .map_err(|_| DriverError::Net("controller thread panicked".to_string()))?;
        let mut workers = std::mem::take(&mut self.reaped);
        for slot in self.workers.drain(..) {
            if let Some(handle) = slot.handle {
                workers.push(
                    handle
                        .join()
                        .map_err(|_| DriverError::Net("worker thread panicked".to_string()))?,
                );
            }
        }
        Ok(ClusterReport {
            output,
            controller,
            workers,
            network: self.fabric.stats(),
        })
    }
}

fn spawn_worker<E: TransportEndpoint>(id: WorkerId, worker: Worker<E>) -> JoinHandle<WorkerStats> {
    std::thread::Builder::new()
        .name(format!("nimbus-worker-{id}"))
        .spawn(move || worker.run())
        .expect("spawn worker thread")
}

fn spawn_controller<E: TransportEndpoint>(
    controller: Controller<E>,
) -> JoinHandle<ControlPlaneStats> {
    std::thread::Builder::new()
        .name("nimbus-controller".to_string())
        .spawn(move || controller.run())
        .expect("spawn controller thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{Scalar, VecF64};
    use nimbus_core::ids::FunctionId;
    use nimbus_core::TaskParams;
    use nimbus_driver::{Dataset, StageSpec};

    const ADD: FunctionId = FunctionId(1);
    const SUM_INTO: FunctionId = FunctionId(2);

    fn setup() -> AppSetup {
        AppSetup::new()
            .function(ADD, "add", |ctx| {
                let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
                let v = ctx.write::<VecF64>(0)?;
                for x in v.values.iter_mut() {
                    *x += delta;
                }
                Ok(())
            })
            .function(SUM_INTO, "sum_into", |ctx| {
                let mut total = 0.0;
                for i in 0..ctx.read_count() {
                    total += ctx.read::<VecF64>(i)?.values.iter().sum::<f64>();
                }
                ctx.write::<Scalar>(0)?.value = total;
                Ok(())
            })
    }

    fn register_factories(setup: AppSetup, data_id: u64, scalar_id: u64, len: usize) -> AppSetup {
        setup
            .object(nimbus_core::LogicalObjectId(data_id), move |_| {
                VecF64::zeros(len)
            })
            .object(nimbus_core::LogicalObjectId(scalar_id), |_| {
                Scalar::new(0.0)
            })
    }

    #[test]
    fn end_to_end_iterative_job_with_templates() {
        let setup = register_factories(setup(), 1, 2, 4);
        let cluster = Cluster::start(ClusterConfig::new(2), setup);
        let report = cluster
            .run_driver(|ctx| {
                let data: Dataset<VecF64> = ctx.define_dataset("data", 4)?;
                let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
                for i in 0..5u64 {
                    ctx.block("inner", |ctx| {
                        ctx.submit_stage(
                            StageSpec::new("add", ADD)
                                .write(&data)
                                .params(TaskParams::from_scalar(1.0)),
                        )?;
                        ctx.submit_stage(
                            StageSpec::new("sum", SUM_INTO)
                                .read_partition(&data, 0)
                                .read_partition(&data, 1)
                                .read_partition(&data, 2)
                                .read_partition(&data, 3)
                                .write_partition(&total, 0)
                                .partitions(1),
                        )?;
                        Ok(())
                    })?;
                    let value = ctx.fetch(&total, 0)?;
                    // After iteration i every element is i+1; 4 partitions x 4 elements.
                    assert_eq!(value, ((i + 1) * 16) as f64, "iteration {i}");
                }
                Ok(ctx.instantiations_sent)
            })
            .unwrap();
        // 5 iterations: the first records, the remaining 4 instantiate.
        assert_eq!(report.output, 4);
        assert_eq!(report.controller.controller_templates_installed, 1);
        assert_eq!(report.controller.controller_template_instantiations, 4);
        assert!(report.controller.tasks_from_templates >= 4 * 5);
        assert!(report.controller.auto_validations >= 3);
        let total_tasks: u64 = report.workers.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(total_tasks, 5 * 5);
    }

    #[test]
    fn same_results_with_templates_disabled() {
        let setup = register_factories(setup(), 1, 2, 4);
        let cluster = Cluster::start(ClusterConfig::new(2).without_templates(), setup);
        let report = cluster
            .run_driver(|ctx| {
                ctx.enable_templates(false)?;
                let data: Dataset<VecF64> = ctx.define_dataset("data", 4)?;
                let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
                for _ in 0..3 {
                    ctx.block("inner", |ctx| {
                        ctx.submit_stage(
                            StageSpec::new("add", ADD)
                                .write(&data)
                                .params(TaskParams::from_scalar(2.0)),
                        )?;
                        ctx.submit_stage(
                            StageSpec::new("sum", SUM_INTO)
                                .read_partition(&data, 0)
                                .read_partition(&data, 1)
                                .read_partition(&data, 2)
                                .read_partition(&data, 3)
                                .write_partition(&total, 0)
                                .partitions(1),
                        )?;
                        Ok(())
                    })?;
                }
                ctx.fetch(&total, 0)
            })
            .unwrap();
        assert_eq!(report.output, 3.0 * 2.0 * 16.0);
        assert_eq!(report.controller.controller_templates_installed, 0);
        assert_eq!(report.controller.tasks_from_templates, 0);
        assert_eq!(report.controller.tasks_scheduled_directly, 15);
    }
}
