//! The single-process Nimbus cluster: controller and worker threads wired
//! over a selectable transport (in-process channels or loopback TCP), plus a
//! synchronous driver handle.

use std::sync::Arc;
use std::thread::JoinHandle;

use nimbus_controller::{Controller, ControllerConfig};
use nimbus_core::ids::WorkerId;
use nimbus_core::ControlPlaneStats;
use nimbus_driver::{DriverContext, DriverError, DriverResult};
use nimbus_net::{Network, NetworkStats, NodeId, TcpFabric, TransportEndpoint};
use nimbus_worker::{ObjectVault, Worker, WorkerConfig, WorkerStats};

use crate::config::{AppSetup, ClusterConfig, TransportKind};

/// The message fabric a running cluster was started on.
enum Fabric {
    InProcess(Network),
    Tcp(TcpFabric),
}

impl Fabric {
    fn stats(&self) -> NetworkStats {
        match self {
            Fabric::InProcess(network) => network.stats(),
            Fabric::Tcp(fabric) => fabric.stats(),
        }
    }
}

/// Everything the cluster reports after a job finishes.
pub struct ClusterReport<T> {
    /// The value returned by the driver program.
    pub output: T,
    /// Control-plane statistics accumulated by the controller.
    pub controller: ControlPlaneStats,
    /// Per-worker execution statistics.
    pub workers: Vec<WorkerStats>,
    /// Transport traffic statistics.
    pub network: NetworkStats,
}

/// A running single-process cluster (threads over either transport).
pub struct Cluster {
    fabric: Fabric,
    controller: Option<JoinHandle<ControlPlaneStats>>,
    workers: Vec<JoinHandle<WorkerStats>>,
    vault: Arc<ObjectVault>,
    worker_ids: Vec<WorkerId>,
}

impl Cluster {
    /// Starts a cluster: spawns the controller and `config.workers` worker
    /// threads, all connected over the configured transport (fresh
    /// in-process network, or one loopback TCP socket per node).
    pub fn start(config: ClusterConfig, setup: AppSetup) -> Self {
        assert!(config.workers > 0, "a cluster needs at least one worker");
        let vault = Arc::new(ObjectVault::new());
        let (functions, factories) = setup.into_shared();

        let worker_ids: Vec<WorkerId> = (0..config.workers as u32).map(WorkerId).collect();

        let fabric = match config.transport {
            TransportKind::InProcess => Fabric::InProcess(Network::new(config.latency)),
            TransportKind::TcpLoopback => {
                let mut nodes = vec![NodeId::Controller, NodeId::Driver];
                nodes.extend(worker_ids.iter().map(|id| NodeId::Worker(*id)));
                Fabric::Tcp(TcpFabric::bind_loopback(&nodes).expect("bind loopback fabric"))
            }
        };

        // Workers first so the controller can address them immediately.
        let mut workers = Vec::with_capacity(config.workers);
        for id in &worker_ids {
            let mut worker_config = WorkerConfig::new(
                *id,
                Arc::clone(&functions),
                Arc::clone(&factories),
                Arc::clone(&vault),
            );
            worker_config.spin_wait = config.spin_wait;
            worker_config.completion_batch = config.completion_batch;
            let handle = match &fabric {
                Fabric::InProcess(network) => {
                    let worker = Worker::new(worker_config, network.register(NodeId::Worker(*id)));
                    spawn_worker(*id, worker)
                }
                Fabric::Tcp(tcp) => {
                    let endpoint = tcp
                        .endpoint(NodeId::Worker(*id))
                        .expect("bind worker endpoint");
                    spawn_worker(*id, Worker::new(worker_config, endpoint))
                }
            };
            workers.push(handle);
        }

        let mut controller_config = ControllerConfig::new(worker_ids.clone());
        controller_config.policy = config.policy.clone();
        controller_config.enable_templates = config.enable_templates;
        controller_config.checkpoint_every = config.checkpoint_every;
        let controller_handle = match &fabric {
            Fabric::InProcess(network) => spawn_controller(Controller::new(
                controller_config,
                network.register(NodeId::Controller),
            )),
            Fabric::Tcp(tcp) => {
                let endpoint = tcp
                    .endpoint(NodeId::Controller)
                    .expect("bind controller endpoint");
                spawn_controller(Controller::new(controller_config, endpoint))
            }
        };

        Self {
            fabric,
            controller: Some(controller_handle),
            workers,
            vault,
            worker_ids,
        }
    }

    /// The identifiers of the cluster's workers.
    pub fn worker_ids(&self) -> &[WorkerId] {
        &self.worker_ids
    }

    /// The shared durable-storage vault (useful for inspecting checkpoints).
    pub fn vault(&self) -> Arc<ObjectVault> {
        Arc::clone(&self.vault)
    }

    /// Snapshot of the transport traffic counters.
    pub fn network_stats(&self) -> NetworkStats {
        self.fabric.stats()
    }

    /// Creates the driver context connected to this cluster.
    ///
    /// On the in-process transport this can be called repeatedly (each call
    /// re-registers the driver node). On a TCP cluster the driver's listener
    /// exists once, so a second call while the first context is alive
    /// panics with an address-in-use error.
    pub fn driver(&self) -> DriverContext {
        match &self.fabric {
            Fabric::InProcess(network) => DriverContext::new(network.register(NodeId::Driver)),
            Fabric::Tcp(tcp) => {
                DriverContext::new(tcp.endpoint(NodeId::Driver).expect(
                    "bind driver endpoint (only one TCP driver context can exist at a time)",
                ))
            }
        }
    }

    /// Runs a driver program to completion, shuts the cluster down, and
    /// returns the driver's output together with every statistics block.
    pub fn run_driver<T>(
        self,
        body: impl FnOnce(&mut DriverContext) -> DriverResult<T>,
    ) -> DriverResult<ClusterReport<T>> {
        let mut driver = self.driver();
        let result = body(&mut driver);
        // Always attempt an orderly shutdown so threads exit even on error.
        let shutdown = driver.shutdown();
        let output = result?;
        shutdown?;
        self.join(output)
    }

    /// Joins all threads after the driver has shut the job down.
    fn join<T>(mut self, output: T) -> DriverResult<ClusterReport<T>> {
        let controller = self
            .controller
            .take()
            .expect("controller handle present")
            .join()
            .map_err(|_| DriverError::Net("controller thread panicked".to_string()))?;
        let mut workers = Vec::with_capacity(self.workers.len());
        for handle in self.workers.drain(..) {
            workers.push(
                handle
                    .join()
                    .map_err(|_| DriverError::Net("worker thread panicked".to_string()))?,
            );
        }
        Ok(ClusterReport {
            output,
            controller,
            workers,
            network: self.fabric.stats(),
        })
    }
}

fn spawn_worker<E: TransportEndpoint>(id: WorkerId, worker: Worker<E>) -> JoinHandle<WorkerStats> {
    std::thread::Builder::new()
        .name(format!("nimbus-worker-{id}"))
        .spawn(move || worker.run())
        .expect("spawn worker thread")
}

fn spawn_controller<E: TransportEndpoint>(
    controller: Controller<E>,
) -> JoinHandle<ControlPlaneStats> {
    std::thread::Builder::new()
        .name("nimbus-controller".to_string())
        .spawn(move || controller.run())
        .expect("spawn controller thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nimbus_core::appdata::{Scalar, VecF64};
    use nimbus_core::ids::FunctionId;
    use nimbus_core::TaskParams;
    use nimbus_driver::{Dataset, StageSpec};

    const ADD: FunctionId = FunctionId(1);
    const SUM_INTO: FunctionId = FunctionId(2);

    fn setup() -> AppSetup {
        AppSetup::new()
            .function(ADD, "add", |ctx| {
                let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
                let v = ctx.write::<VecF64>(0)?;
                for x in v.values.iter_mut() {
                    *x += delta;
                }
                Ok(())
            })
            .function(SUM_INTO, "sum_into", |ctx| {
                let mut total = 0.0;
                for i in 0..ctx.read_count() {
                    total += ctx.read::<VecF64>(i)?.values.iter().sum::<f64>();
                }
                ctx.write::<Scalar>(0)?.value = total;
                Ok(())
            })
    }

    fn register_factories(setup: AppSetup, data_id: u64, scalar_id: u64, len: usize) -> AppSetup {
        setup
            .object(nimbus_core::LogicalObjectId(data_id), move |_| {
                VecF64::zeros(len)
            })
            .object(nimbus_core::LogicalObjectId(scalar_id), |_| {
                Scalar::new(0.0)
            })
    }

    #[test]
    fn end_to_end_iterative_job_with_templates() {
        let setup = register_factories(setup(), 1, 2, 4);
        let cluster = Cluster::start(ClusterConfig::new(2), setup);
        let report = cluster
            .run_driver(|ctx| {
                let data: Dataset<VecF64> = ctx.define_dataset("data", 4)?;
                let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
                for i in 0..5u64 {
                    ctx.block("inner", |ctx| {
                        ctx.submit_stage(
                            StageSpec::new("add", ADD)
                                .write(&data)
                                .params(TaskParams::from_scalar(1.0)),
                        )?;
                        ctx.submit_stage(
                            StageSpec::new("sum", SUM_INTO)
                                .read_partition(&data, 0)
                                .read_partition(&data, 1)
                                .read_partition(&data, 2)
                                .read_partition(&data, 3)
                                .write_partition(&total, 0)
                                .partitions(1),
                        )?;
                        Ok(())
                    })?;
                    let value = ctx.fetch(&total, 0)?;
                    // After iteration i every element is i+1; 4 partitions x 4 elements.
                    assert_eq!(value, ((i + 1) * 16) as f64, "iteration {i}");
                }
                Ok(ctx.instantiations_sent)
            })
            .unwrap();
        // 5 iterations: the first records, the remaining 4 instantiate.
        assert_eq!(report.output, 4);
        assert_eq!(report.controller.controller_templates_installed, 1);
        assert_eq!(report.controller.controller_template_instantiations, 4);
        assert!(report.controller.tasks_from_templates >= 4 * 5);
        assert!(report.controller.auto_validations >= 3);
        let total_tasks: u64 = report.workers.iter().map(|w| w.tasks_executed).sum();
        assert_eq!(total_tasks, 5 * 5);
    }

    #[test]
    fn same_results_with_templates_disabled() {
        let setup = register_factories(setup(), 1, 2, 4);
        let cluster = Cluster::start(ClusterConfig::new(2).without_templates(), setup);
        let report = cluster
            .run_driver(|ctx| {
                ctx.enable_templates(false)?;
                let data: Dataset<VecF64> = ctx.define_dataset("data", 4)?;
                let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
                for _ in 0..3 {
                    ctx.block("inner", |ctx| {
                        ctx.submit_stage(
                            StageSpec::new("add", ADD)
                                .write(&data)
                                .params(TaskParams::from_scalar(2.0)),
                        )?;
                        ctx.submit_stage(
                            StageSpec::new("sum", SUM_INTO)
                                .read_partition(&data, 0)
                                .read_partition(&data, 1)
                                .read_partition(&data, 2)
                                .read_partition(&data, 3)
                                .write_partition(&total, 0)
                                .partitions(1),
                        )?;
                        Ok(())
                    })?;
                }
                ctx.fetch(&total, 0)
            })
            .unwrap();
        assert_eq!(report.output, 3.0 * 2.0 * 16.0);
        assert_eq!(report.controller.controller_templates_installed, 0);
        assert_eq!(report.controller.tasks_from_templates, 0);
        assert_eq!(report.controller.tasks_scheduled_directly, 15);
    }
}
