//! Shared plumbing for the multi-process binaries (`nimbus-controller`,
//! `nimbus-worker`): the cluster address map and its command-line syntax.
//!
//! Every process of a multi-process cluster is launched with the *same*
//! address map — `--controller ADDR --driver ADDR --worker ID=ADDR...` — and
//! binds only its own node's listener, dialing the others lazily through
//! [`nimbus_net::TcpFabric`].

use std::collections::HashMap;
use std::net::SocketAddr;

use nimbus_core::ids::WorkerId;
use nimbus_net::NodeId;

/// Parsed command line: the cluster address map plus any binary-specific
/// `--flag value` pairs, in order.
pub struct CommandLine {
    /// Address of every node in the cluster.
    pub addrs: HashMap<NodeId, SocketAddr>,
    /// Worker ids in the order their `--worker` flags appeared.
    pub worker_ids: Vec<WorkerId>,
    /// Flags not consumed by the shared syntax (`--iterations 10` becomes
    /// `("iterations", "10")`).
    pub rest: Vec<(String, String)>,
}

/// Parses `--controller ADDR --driver ADDR --worker ID=ADDR...` plus
/// arbitrary `--flag value` pairs. A flag followed by another flag (or by
/// nothing) is boolean and parses as `("flag", "true")` — e.g.
/// `nimbus-worker --rejoin`.
pub fn parse_command_line(args: impl Iterator<Item = String>) -> Result<CommandLine, String> {
    let mut addrs = HashMap::new();
    let mut worker_ids = Vec::new();
    let mut rest = Vec::new();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, found `{flag}`"))?;
        let value = match args.peek() {
            Some(next) if !next.starts_with("--") => args.next().expect("peeked"),
            _ => {
                // Valueless boolean flag; the shared cluster-map flags all
                // require real values.
                if matches!(name, "controller" | "driver" | "worker") {
                    return Err(format!("--{name} requires a value"));
                }
                rest.push((name.to_string(), "true".to_string()));
                continue;
            }
        };
        match name {
            "controller" => {
                if addrs
                    .insert(NodeId::Controller, parse_addr(&value)?)
                    .is_some()
                {
                    return Err("--controller specified twice".to_string());
                }
            }
            "driver" => {
                if addrs.insert(NodeId::Driver, parse_addr(&value)?).is_some() {
                    return Err("--driver specified twice".to_string());
                }
            }
            "worker" => {
                let (id, addr) = parse_worker_spec(&value)?;
                if addrs.insert(NodeId::Worker(id), addr).is_some() {
                    return Err(format!("worker {id} specified twice"));
                }
                worker_ids.push(id);
            }
            other => rest.push((other.to_string(), value)),
        }
    }
    if !addrs.contains_key(&NodeId::Controller) {
        return Err("missing --controller ADDR".to_string());
    }
    if worker_ids.is_empty() {
        return Err("at least one --worker ID=ADDR is required".to_string());
    }
    Ok(CommandLine {
        addrs,
        worker_ids,
        rest,
    })
}

fn parse_addr(s: &str) -> Result<SocketAddr, String> {
    s.parse()
        .map_err(|e| format!("invalid socket address `{s}`: {e}"))
}

/// Parses one `ID=ADDR` worker specification.
pub fn parse_worker_spec(s: &str) -> Result<(WorkerId, SocketAddr), String> {
    let (id, addr) = s
        .split_once('=')
        .ok_or_else(|| format!("invalid worker spec `{s}`, expected ID=ADDR"))?;
    let id: u32 = id
        .parse()
        .map_err(|e| format!("invalid worker id `{id}`: {e}"))?;
    Ok((WorkerId(id), parse_addr(addr)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> std::vec::IntoIter<String> {
        s.iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_full_cluster_map_and_extra_flags() {
        let cl = parse_command_line(args(&[
            "--controller",
            "127.0.0.1:5000",
            "--driver",
            "127.0.0.1:5001",
            "--worker",
            "0=127.0.0.1:5002",
            "--worker",
            "1=127.0.0.1:5003",
            "--iterations",
            "10",
        ]))
        .unwrap();
        assert_eq!(cl.addrs.len(), 4);
        assert_eq!(cl.worker_ids, vec![WorkerId(0), WorkerId(1)]);
        assert_eq!(cl.rest, vec![("iterations".to_string(), "10".to_string())]);
        assert_eq!(
            cl.addrs[&NodeId::Worker(WorkerId(1))],
            "127.0.0.1:5003".parse().unwrap()
        );
    }

    #[test]
    fn boolean_flags_parse_without_a_value() {
        let cl = parse_command_line(args(&[
            "--controller",
            "127.0.0.1:5000",
            "--worker",
            "0=127.0.0.1:5002",
            "--rejoin",
            "--vault-dir",
            "/tmp/vault",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(
            cl.rest,
            vec![
                ("rejoin".to_string(), "true".to_string()),
                ("vault-dir".to_string(), "/tmp/vault".to_string()),
                ("verbose".to_string(), "true".to_string()),
            ]
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_command_line(args(&["--worker", "zero=1.2.3.4:1"])).is_err());
        assert!(parse_command_line(args(&["--worker", "0"])).is_err());
        assert!(parse_command_line(args(&["--controller", "nonsense"])).is_err());
        assert!(parse_command_line(args(&["stray"])).is_err());
        assert!(parse_command_line(args(&["--controller", "127.0.0.1:1"])).is_err()); // no workers
        assert!(parse_command_line(args(&[
            "--controller",
            "127.0.0.1:1",
            "--worker",
            "0=127.0.0.1:2",
            "--worker",
            "0=127.0.0.1:3",
        ]))
        .is_err()); // duplicate worker
    }
}
