//! The multi-process controller binary: runs the Nimbus controller *and*
//! the quickstart driver program of this cluster, connected to worker
//! processes over TCP.
//!
//! ```text
//! nimbus-controller --controller ADDR --driver ADDR --worker ID=ADDR... \
//!     [--iterations N] [--checkpoint-every N] [--iter-sleep-ms N] \
//!     [--reply-timeout-secs N] [--rejoin-grace-secs N]
//! ```
//!
//! Start the `nimbus-worker` processes with the same address map (order does
//! not matter; dials retry briefly). The driver prints one
//! `iteration {i}: total = {v}` line per iteration — identical to what the
//! in-process quickstart job produces — then `job complete` on success. A
//! worker failure without a checkpoint surfaces as `driver error: ...` and
//! exit code 1 instead of a hang.

use std::time::Duration;

use nimbus_controller::{Controller, ControllerConfig};
use nimbus_driver::DriverContext;
use nimbus_net::{NodeId, TcpFabric};
use nimbus_runtime::multiproc::parse_command_line;
use nimbus_runtime::quickstart::quickstart_driver_with;

fn main() {
    let cl = match parse_command_line(std::env::args().skip(1)) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("nimbus-controller: {e}");
            std::process::exit(2);
        }
    };
    let mut iterations: u32 = 10;
    let mut checkpoint_every: Option<u64> = None;
    let mut iter_sleep = Duration::ZERO;
    let mut reply_timeout = Duration::from_secs(30);
    let mut rejoin_grace: Option<Duration> = None;
    for (flag, value) in &cl.rest {
        let ok = match flag.as_str() {
            "iterations" => value.parse::<u32>().map(|n| iterations = n).is_ok(),
            "checkpoint-every" => value.parse().map(|n| checkpoint_every = Some(n)).is_ok(),
            "iter-sleep-ms" => value
                .parse()
                .map(|n| iter_sleep = Duration::from_millis(n))
                .is_ok(),
            "reply-timeout-secs" => value
                .parse()
                .map(|n| reply_timeout = Duration::from_secs(n))
                .is_ok(),
            "rejoin-grace-secs" => value
                .parse()
                .map(|n| rejoin_grace = Some(Duration::from_secs(n)))
                .is_ok(),
            _ => false,
        };
        if !ok {
            eprintln!("nimbus-controller: invalid flag --{flag} {value}");
            std::process::exit(2);
        }
    }
    if !cl.addrs.contains_key(&NodeId::Driver) {
        eprintln!("nimbus-controller: missing --driver ADDR (the driver runs in this process)");
        std::process::exit(2);
    }

    let fabric = TcpFabric::from_addrs(cl.addrs);
    let controller_endpoint = match fabric.endpoint(NodeId::Controller) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("nimbus-controller: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let mut config = ControllerConfig::new(cl.worker_ids.clone());
    config.checkpoint_every = checkpoint_every;
    config.rejoin_grace = rejoin_grace;
    let controller = Controller::new(config, controller_endpoint);
    let controller_thread = std::thread::Builder::new()
        .name("nimbus-controller".to_string())
        .spawn(move || controller.run())
        .expect("spawn controller thread");

    let driver_endpoint = match fabric.endpoint(NodeId::Driver) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("nimbus-controller: driver bind failed: {e}");
            std::process::exit(1);
        }
    };
    let mut ctx = DriverContext::new(driver_endpoint);
    ctx.set_reply_timeout(reply_timeout);

    let result = quickstart_driver_with(&mut ctx, iterations, |i, total| {
        println!("iteration {i}: total = {total}");
        if !iter_sleep.is_zero() {
            std::thread::sleep(iter_sleep);
        }
    });
    // Orderly shutdown either way, so worker processes exit too.
    let shutdown = ctx.shutdown();
    let stats = controller_thread.join();

    match (result, shutdown) {
        (Ok(_), Ok(())) => match stats {
            Ok(stats) => println!(
                "job complete: templates installed = {}, instantiations = {}",
                stats.controller_templates_installed, stats.controller_template_instantiations
            ),
            Err(_) => println!("job complete"),
        },
        (Err(e), _) => {
            eprintln!("driver error: {e}");
            std::process::exit(1);
        }
        (_, Err(e)) => {
            eprintln!("driver error during shutdown: {e}");
            std::process::exit(1);
        }
    }
}
