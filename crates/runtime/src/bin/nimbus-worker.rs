//! The multi-process worker binary: one Nimbus worker node over TCP,
//! running the quickstart application's functions and dataset factories.
//!
//! ```text
//! nimbus-worker --id K --controller ADDR --driver ADDR --worker ID=ADDR... \
//!     [--vault-dir DIR] [--rejoin]
//! ```
//!
//! Pass the same address map as the `nimbus-controller` process; `--id`
//! selects which `--worker` entry this process binds. The process exits when
//! the controller sends `Shutdown` — or when the controller's connection
//! drops, so killed jobs do not leave orphan workers behind.
//!
//! `--vault-dir DIR` backs the durable-storage vault with a directory all
//! worker processes share, so checkpoints saved by a worker survive its
//! death. `--rejoin` marks a restart of a previously killed worker: it
//! re-binds the same `--worker` address and re-registers with the
//! controller, which reinstalls its patched templates and reloads its
//! partitions from the shared vault — the job continues with template edits
//! only, no re-recording. (Every worker registers on startup; `--rejoin`
//! only changes the logging.)

use std::sync::Arc;

use nimbus_core::ids::WorkerId;
use nimbus_net::{NodeId, TcpFabric};
use nimbus_runtime::multiproc::parse_command_line;
use nimbus_runtime::quickstart::quickstart_setup;
use nimbus_worker::{ObjectVault, Worker, WorkerConfig};

fn main() {
    let cl = match parse_command_line(std::env::args().skip(1)) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("nimbus-worker: {e}");
            std::process::exit(2);
        }
    };
    let mut id: Option<WorkerId> = None;
    let mut vault_dir: Option<String> = None;
    let mut rejoin = false;
    for (flag, value) in &cl.rest {
        let ok = match flag.as_str() {
            "id" => value.parse::<u32>().map(|n| id = Some(WorkerId(n))).is_ok(),
            "vault-dir" => {
                vault_dir = Some(value.clone());
                true
            }
            "rejoin" => {
                rejoin = value == "true";
                true
            }
            _ => false,
        };
        if !ok {
            eprintln!("nimbus-worker: invalid flag --{flag} {value}");
            std::process::exit(2);
        }
    }
    let Some(id) = id else {
        eprintln!("nimbus-worker: missing --id K");
        std::process::exit(2);
    };
    if !cl.worker_ids.contains(&id) {
        eprintln!("nimbus-worker: --id {id} has no matching --worker {id}=ADDR entry");
        std::process::exit(2);
    }

    let fabric = TcpFabric::from_addrs(cl.addrs);
    let endpoint = match fabric.endpoint(NodeId::Worker(id)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("nimbus-worker: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let vault = match &vault_dir {
        Some(dir) => match ObjectVault::file_backed(dir) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("nimbus-worker: cannot open vault dir {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => ObjectVault::new(),
    };
    if rejoin {
        println!("worker {id} rejoining the cluster");
    }
    let (functions, factories) = quickstart_setup().into_shared();
    let config = WorkerConfig::new(id, functions, factories, Arc::new(vault));
    let stats = Worker::new(config, endpoint).run();
    println!(
        "worker {id} done: tasks = {}, receives = {}, rejoin_acks = {}, failures = {}",
        stats.tasks_executed,
        stats.receives,
        stats.rejoin_acks,
        stats.failures.len()
    );
}
