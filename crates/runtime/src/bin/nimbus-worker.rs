//! The multi-process worker binary: one Nimbus worker node over TCP,
//! running the quickstart application's functions and dataset factories.
//!
//! ```text
//! nimbus-worker --id K --controller ADDR --driver ADDR --worker ID=ADDR...
//! ```
//!
//! Pass the same address map as the `nimbus-controller` process; `--id`
//! selects which `--worker` entry this process binds. The process exits when
//! the controller sends `Shutdown` — or when the controller's connection
//! drops, so killed jobs do not leave orphan workers behind.

use std::sync::Arc;

use nimbus_core::ids::WorkerId;
use nimbus_net::{NodeId, TcpFabric};
use nimbus_runtime::multiproc::parse_command_line;
use nimbus_runtime::quickstart::quickstart_setup;
use nimbus_worker::{ObjectVault, Worker, WorkerConfig};

fn main() {
    let cl = match parse_command_line(std::env::args().skip(1)) {
        Ok(cl) => cl,
        Err(e) => {
            eprintln!("nimbus-worker: {e}");
            std::process::exit(2);
        }
    };
    let mut id: Option<WorkerId> = None;
    for (flag, value) in &cl.rest {
        match (flag.as_str(), value.parse::<u32>()) {
            ("id", Ok(n)) => id = Some(WorkerId(n)),
            _ => {
                eprintln!("nimbus-worker: invalid flag --{flag} {value}");
                std::process::exit(2);
            }
        }
    }
    let Some(id) = id else {
        eprintln!("nimbus-worker: missing --id K");
        std::process::exit(2);
    };
    if !cl.worker_ids.contains(&id) {
        eprintln!("nimbus-worker: --id {id} has no matching --worker {id}=ADDR entry");
        std::process::exit(2);
    }

    let fabric = TcpFabric::from_addrs(cl.addrs);
    let endpoint = match fabric.endpoint(NodeId::Worker(id)) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("nimbus-worker: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let (functions, factories) = quickstart_setup().into_shared();
    let config = WorkerConfig::new(id, functions, factories, Arc::new(ObjectVault::new()));
    let stats = Worker::new(config, endpoint).run();
    println!(
        "worker {id} done: tasks = {}, receives = {}, failures = {}",
        stats.tasks_executed,
        stats.receives,
        stats.failures.len()
    );
}
