//! The quickstart job as a reusable library: one definition shared by the
//! transport integration tests and the `nimbus-controller` /
//! `nimbus-worker` binaries, which is what makes "identical output on every
//! transport" a testable property rather than a claim. The `quickstart`
//! *example* keeps an inline copy of the same job so it stays a
//! self-contained API demo; both copies assert the same closed-form totals
//! (`(i + 1) * PARTITIONS * PARTITION_LEN`), so they cannot silently
//! diverge.

use nimbus_core::appdata::{Scalar, VecF64};
use nimbus_core::ids::{FunctionId, LogicalObjectId};
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, DriverResult, Session, StageSpec};

use crate::cluster::Cluster;
use crate::config::AppSetup;

/// Function id of the per-partition `add` stage.
pub const ADD: FunctionId = FunctionId(1);
/// Function id of the reduction `sum` stage.
pub const SUM: FunctionId = FunctionId(2);
/// Logical id of the partitioned data vector.
pub const DATA: LogicalObjectId = LogicalObjectId(1);
/// Logical id of the single-partition reduction target.
pub const TOTAL: LogicalObjectId = LogicalObjectId(2);
/// Partition count of the data vector.
pub const PARTITIONS: u32 = 8;
/// Elements per data partition.
pub const PARTITION_LEN: usize = 8;

/// Registers the quickstart application: an `add` stage over every data
/// partition and a `sum` reduction into a scalar.
pub fn quickstart_setup() -> AppSetup {
    AppSetup::new()
        .function(ADD, "add", |ctx| {
            let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
            for x in ctx.write::<VecF64>(0)?.values.iter_mut() {
                *x += delta;
            }
            Ok(())
        })
        .function(SUM, "sum", |ctx| {
            let mut total = 0.0;
            for i in 0..ctx.read_count() {
                total += ctx.read::<VecF64>(i)?.values.iter().sum::<f64>();
            }
            ctx.write::<Scalar>(0)?.value = total;
            Ok(())
        })
        .object(DATA, |_| VecF64::zeros(PARTITION_LEN))
        .object(TOTAL, |_| Scalar::new(0.0))
}

/// Runs the quickstart driver program: `iterations` executions of a
/// two-stage basic block (add 1.0 everywhere, reduce into a scalar) followed
/// by a scalar fetch. Returns the fetched total of every iteration —
/// iteration `i` totals `(i + 1) * PARTITIONS * PARTITION_LEN`.
pub fn quickstart_driver(ctx: &mut Session, iterations: u32) -> DriverResult<Vec<f64>> {
    quickstart_driver_with(ctx, iterations, |_, _| {})
}

/// [`quickstart_driver`] with a per-iteration observer, called with the
/// iteration index and its fetched total. The multi-process binaries use it
/// to print progress and to pace iterations for fault-injection tests.
pub fn quickstart_driver_with(
    ctx: &mut Session,
    iterations: u32,
    mut on_iteration: impl FnMut(u32, f64),
) -> DriverResult<Vec<f64>> {
    let data: Dataset<VecF64> = ctx.define_dataset("data", PARTITIONS)?;
    let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
    let mut totals = Vec::with_capacity(iterations as usize);
    for i in 0..iterations {
        ctx.block("inner", |ctx| {
            ctx.submit_stage(
                StageSpec::new("add", ADD)
                    .write(&data)
                    .params(TaskParams::from_scalar(1.0)),
            )?;
            let mut sum = StageSpec::new("sum", SUM).partitions(1);
            for p in 0..data.partitions {
                sum = sum.read_partition(&data, p);
            }
            ctx.submit_stage(sum.write_partition(&total, 0))?;
            Ok(())
        })?;
        let value = ctx.fetch(&total, 0)?;
        on_iteration(i, value);
        totals.push(value);
    }
    Ok(totals)
}

/// Runs `jobs` concurrent quickstart drivers against one running cluster —
/// the multi-driver quickstart. Each driver opens its own [`Session`]
/// (independent job, independent dataset namespace), runs `iterations`
/// iterations, and closes its session; the per-job totals come back in
/// session-open order. Every job's totals follow the same closed form as a
/// solo run — which is exactly the isolation property the multijob suite
/// pins.
pub fn quickstart_multijob(
    cluster: &mut Cluster,
    jobs: usize,
    iterations: u32,
) -> DriverResult<Vec<Vec<f64>>> {
    let mut handles = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        let mut session = cluster.connect_driver()?;
        handles.push(std::thread::spawn(move || -> DriverResult<Vec<f64>> {
            let totals = quickstart_driver(&mut session, iterations)?;
            session.close()?;
            Ok(totals)
        }));
    }
    handles
        .into_iter()
        .map(|h| h.join().expect("driver thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cluster, ClusterConfig};

    #[test]
    fn multijob_quickstart_every_job_follows_the_closed_form() {
        let mut cluster = Cluster::start(ClusterConfig::new(2), quickstart_setup());
        let outputs = quickstart_multijob(&mut cluster, 3, 4).unwrap();
        let report = cluster.shutdown_and_join().unwrap();
        let expected: Vec<f64> = (1..=4)
            .map(|i| (i * PARTITIONS as usize * PARTITION_LEN) as f64)
            .collect();
        assert_eq!(outputs.len(), 3);
        for (job, totals) in outputs.iter().enumerate() {
            assert_eq!(totals, &expected, "job {job} diverged");
        }
        // Each job recorded its own template once.
        assert_eq!(report.controller.controller_templates_installed, 3);
    }

    #[test]
    fn quickstart_totals_follow_the_closed_form() {
        let cluster = Cluster::start(ClusterConfig::new(2), quickstart_setup());
        let report = cluster.run_driver(|ctx| quickstart_driver(ctx, 4)).unwrap();
        let expected: Vec<f64> = (1..=4)
            .map(|i| (i * PARTITIONS as usize * PARTITION_LEN) as f64)
            .collect();
        assert_eq!(report.output, expected);
        assert!(report.controller.controller_templates_installed >= 1);
    }
}
