//! Equivalence of the batched and per-message control planes.
//!
//! The corked/batched send path is a transport optimization and must be
//! invisible above the wire: the same job must produce byte-identical
//! output, the same per-worker command stream (observable through identical
//! dispatch/execution counts and output values), on the in-process fabric
//! and on TCP loopback, batched and unbatched. These tests pin that, plus
//! the new batching counters that prove coalescing actually happens.

use nimbus_core::appdata::VecF64;
use nimbus_core::ids::FunctionId;
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, DriverContext, DriverResult, StageSpec};
use nimbus_runtime::quickstart::{quickstart_driver, quickstart_setup, PARTITIONS, PARTITION_LEN};
use nimbus_runtime::{AppSetup, Cluster, ClusterConfig, ClusterReport};

const ADD: FunctionId = FunctionId(1);
const FLOOD_PARTITIONS: u32 = 8;

/// Runs the quickstart job and returns its report.
fn run_quickstart(config: ClusterConfig, iterations: u32) -> ClusterReport<Vec<f64>> {
    let cluster = Cluster::start(config, quickstart_setup());
    cluster
        .run_driver(|ctx| quickstart_driver(ctx, iterations))
        .expect("job completes")
}

/// A setup with a single add stage — the steady-state instantiation flood
/// shape: the driver pipelines instantiations without synchronizing, which
/// is what gives the controller's cork consecutive messages to coalesce.
fn flood_setup() -> AppSetup {
    AppSetup::new()
        .function(ADD, "add", |ctx| {
            let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
            for x in ctx.write::<VecF64>(0)?.values.iter_mut() {
                *x += delta;
            }
            Ok(())
        })
        .object(nimbus_core::LogicalObjectId(1), |_| VecF64::zeros(4))
}

fn flood_driver(ctx: &mut DriverContext, iterations: u32) -> DriverResult<f64> {
    let data: Dataset<VecF64> = ctx.define_dataset("data", FLOOD_PARTITIONS)?;
    for _ in 0..iterations {
        ctx.block("flood", |ctx| {
            ctx.submit_stage(
                StageSpec::new("add", ADD)
                    .write(&data)
                    .params(TaskParams::from_scalar(1.0)),
            )?;
            Ok(())
        })?;
    }
    ctx.barrier()?;
    // Every partition was incremented once per iteration; the scalar
    // projection of a VecF64 is its first element.
    ctx.fetch_scalar(&data, 0)
}

fn run_flood(config: ClusterConfig, iterations: u32) -> ClusterReport<f64> {
    let cluster = Cluster::start(config, flood_setup());
    cluster
        .run_driver(|ctx| flood_driver(ctx, iterations))
        .expect("flood job completes")
}

/// The core property, swept over a few job sizes: batched and per-message
/// control planes produce byte-identical results on both transports, with
/// identical dispatch and execution counts — batching must not reorder,
/// drop, or duplicate anything in a worker's command stream.
#[test]
fn batched_dispatch_is_byte_identical_to_per_message_on_both_transports() {
    for iterations in [3u32, 6] {
        let expected: Vec<f64> = (1..=iterations as usize)
            .map(|i| (i * PARTITIONS as usize * PARTITION_LEN) as f64)
            .collect();
        let reference = run_quickstart(ClusterConfig::new(2), iterations);
        assert_eq!(reference.output, expected, "closed form (batched in-proc)");
        let reference_commands = reference.controller.commands_dispatched;
        let reference_tasks: u64 = reference.workers.iter().map(|w| w.tasks_executed).sum();
        let configs = [
            ClusterConfig::new(2).with_per_message_control_plane(),
            ClusterConfig::new(2).with_tcp_transport(),
            ClusterConfig::new(2)
                .with_tcp_transport()
                .with_per_message_control_plane(),
        ];
        for (i, config) in configs.into_iter().enumerate() {
            let report = run_quickstart(config, iterations);
            assert_eq!(report.output, expected, "config {i} diverged");
            assert_eq!(
                report.controller.commands_dispatched, reference_commands,
                "config {i} dispatched a different command stream"
            );
            let tasks: u64 = report.workers.iter().map(|w| w.tasks_executed).sum();
            assert_eq!(tasks, reference_tasks, "config {i} executed differently");
        }
    }
}

/// A pipelined instantiation flood behaves identically batched and
/// unbatched, and on TCP the batched run actually coalesces: fewer
/// `write(2)`s than messages, a nonzero coalesced-frame count, and none of
/// that in per-message mode.
#[test]
fn tcp_flood_coalesces_frames_without_changing_results() {
    const ITERATIONS: u32 = 40;
    let batched = run_flood(ClusterConfig::new(2).with_tcp_transport(), ITERATIONS);
    let per_message = run_flood(
        ClusterConfig::new(2)
            .with_tcp_transport()
            .with_per_message_control_plane(),
        ITERATIONS,
    );
    // The first block call records (and executes); the rest instantiate.
    let expected = ITERATIONS as f64;
    assert_eq!(batched.output, expected);
    assert_eq!(per_message.output, expected);
    assert_eq!(
        batched.controller.commands_dispatched,
        per_message.controller.commands_dispatched
    );

    // Per-message mode never batches.
    assert_eq!(per_message.network.batched_commands, 0);
    assert_eq!(per_message.network.frames_coalesced, 0);
    // The batched run corked at least some of the flood: every coalesced
    // frame is a write(2) saved, so writes stay strictly below the
    // per-message count of the same workload.
    assert!(
        batched.network.frames_coalesced > 0,
        "flood produced no coalesced frames: {:?}",
        batched.network
    );
    assert!(
        batched.network.tcp_writes < per_message.network.tcp_writes,
        "batched run wrote as often as per-message ({} vs {})",
        batched.network.tcp_writes,
        per_message.network.tcp_writes
    );
    // Accounting is batching-independent: same messages, same bytes, within
    // the usual timing tolerance for completion-report batching.
    let ratio = batched.network.control_bytes as f64 / per_message.network.control_bytes as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "control-byte accounting diverged: {ratio:.2}"
    );
}

/// In per-message mode every TCP control message is its own write; in
/// batched mode writes never exceed messages. Sanity for the counter the
/// syscall-per-flush guarantee is asserted with at the endpoint level.
#[test]
fn tcp_write_counter_is_bounded_by_messages() {
    let report = run_flood(ClusterConfig::new(2).with_tcp_transport(), 10);
    assert!(report.network.tcp_writes > 0);
    assert!(
        report.network.tcp_writes <= report.network.messages,
        "writes {} exceed messages {}",
        report.network.tcp_writes,
        report.network.messages
    );
}
