//! Multi-tenant control-plane tests: many concurrent driver sessions on one
//! controller + worker pool, with per-job isolation.
//!
//! The acceptance property: two `Session`s running concurrently produce
//! output **byte-identical** to running each job alone — on both
//! transports, and even when a worker is killed and rejoins mid-flight.
//! Each job's workload is parameterized differently (a different `delta`
//! per iteration), so any cross-job leakage of physical objects, command
//! ids, or transfers would corrupt at least one job's closed-form totals.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use nimbus_core::appdata::{Scalar, VecF64};
use nimbus_core::ids::WorkerId;
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, DriverResult, Session, StageSpec};
use nimbus_runtime::quickstart::{quickstart_setup, ADD, PARTITIONS, PARTITION_LEN, SUM};
use nimbus_runtime::{Cluster, ClusterConfig};

mod common;
use common::with_timeout;

/// The quickstart job parameterized by `delta`: iteration `i` totals
/// `(i + 1) * delta * PARTITIONS * PARTITION_LEN`. `pause_at` optionally
/// names an iteration at which the driver parks on `gate` twice — after the
/// block's fire-and-forget instantiation but *before* the synchronous fetch
/// — leaving that iteration's commands in flight while the test churns the
/// cluster membership.
fn job_body(
    session: &mut Session,
    iterations: u32,
    delta: f64,
    pause_at: Option<(u32, Arc<Barrier>)>,
) -> DriverResult<Vec<f64>> {
    let data: Dataset<VecF64> = session.define_dataset("data", PARTITIONS)?;
    let total: Dataset<Scalar> = session.define_dataset("total", 1)?;
    let mut totals = Vec::with_capacity(iterations as usize);
    for i in 0..iterations {
        session.block("inner", |ctx| {
            ctx.submit_stage(
                StageSpec::new("add", ADD)
                    .write(&data)
                    .params(TaskParams::from_scalar(delta)),
            )?;
            let mut sum = StageSpec::new("sum", SUM).partitions(1);
            for p in 0..data.partitions {
                sum = sum.read_partition(&data, p);
            }
            ctx.submit_stage(sum.write_partition(&total, 0))?;
            Ok(())
        })?;
        if let Some((at, gate)) = &pause_at {
            if i == *at {
                gate.wait(); // Reached the churn point, commands in flight.
                gate.wait(); // Churn done; resume with the fetch.
            }
        }
        totals.push(session.fetch(&total, 0)?);
    }
    Ok(totals)
}

/// What `job_body` produces undisturbed (pinned by the solo runs below):
/// the byte-identical baseline for every concurrent/churned variant.
fn closed_form(iterations: u32, delta: f64) -> Vec<f64> {
    (1..=iterations)
        .map(|i| (i as f64) * delta * (PARTITIONS as usize * PARTITION_LEN) as f64)
        .collect()
}

/// Runs one job alone on a fresh cluster and returns its totals.
fn solo_run(config: ClusterConfig, iterations: u32, delta: f64) -> Vec<f64> {
    let mut cluster = Cluster::start(config, quickstart_setup());
    let mut session = cluster.connect_driver().expect("open session");
    let totals = job_body(&mut session, iterations, delta, None).expect("solo job runs");
    session.close().expect("close session");
    cluster.shutdown_and_join().expect("shutdown");
    totals
}

/// A membership change to apply while every driver is parked mid-iteration:
/// the pause point and the churn body.
type ChurnPlan = (u32, Box<dyn FnOnce(&mut Cluster) + Send>);

/// Runs `deltas.len()` jobs concurrently on one cluster and returns each
/// job's totals (in session order) plus the controller stats.
fn concurrent_run(
    config: ClusterConfig,
    iterations: u32,
    deltas: &[f64],
    churn: Option<ChurnPlan>,
) -> (Vec<Vec<f64>>, nimbus_core::ControlPlaneStats) {
    let mut cluster = Cluster::start(config, quickstart_setup());
    let churn_gate = churn
        .as_ref()
        .map(|_| Arc::new(Barrier::new(deltas.len() + 1)));
    let mut handles = Vec::new();
    for &delta in deltas {
        let mut session = cluster.connect_driver().expect("open session");
        let pause = churn
            .as_ref()
            .map(|(at, _)| (*at, Arc::clone(churn_gate.as_ref().expect("gate"))));
        handles.push(std::thread::spawn(move || {
            let totals =
                job_body(&mut session, iterations, delta, pause).expect("concurrent job runs");
            session.close().expect("close session");
            totals
        }));
    }
    if let Some((_, churn_fn)) = churn {
        let gate = churn_gate.expect("gate");
        gate.wait(); // Every driver parked with commands in flight.
        churn_fn(&mut cluster);
        gate.wait(); // Release the drivers.
    }
    let outputs: Vec<Vec<f64>> = handles
        .into_iter()
        .map(|h| h.join().expect("driver thread panicked"))
        .collect();
    let report = cluster.shutdown_and_join().expect("shutdown");
    if std::env::var("NIMBUS_DEBUG_RECOVERY").is_ok() {
        for (i, w) in report.workers.iter().enumerate() {
            eprintln!(
                "[worker {i}] failures={:?} dup_ignored={} loads={} creates={}",
                w.failures, w.duplicate_commands_ignored, w.loads, w.creates
            );
        }
    }
    (outputs, report.controller)
}

/// Acceptance: two sessions on one controller run concurrently with
/// byte-identical per-job output vs. running each job alone — in-process
/// transport.
#[test]
fn concurrent_jobs_match_solo_runs_in_process() {
    with_timeout("concurrent-inproc", Duration::from_secs(120), || {
        let solo_a = solo_run(ClusterConfig::new(2), 6, 1.0);
        let solo_b = solo_run(ClusterConfig::new(2), 6, 2.5);
        assert_eq!(solo_a, closed_form(6, 1.0));
        assert_eq!(solo_b, closed_form(6, 2.5));
        let (outputs, stats) = concurrent_run(ClusterConfig::new(2), 6, &[1.0, 2.5], None);
        assert_eq!(outputs[0], solo_a, "job A diverged from its solo run");
        assert_eq!(outputs[1], solo_b, "job B diverged from its solo run");
        // Each job recorded its own template exactly once.
        assert_eq!(stats.controller_templates_installed, 2);
    });
}

/// The same acceptance property over loopback TCP sockets.
#[test]
fn concurrent_jobs_match_solo_runs_tcp() {
    with_timeout("concurrent-tcp", Duration::from_secs(120), || {
        let solo_a = solo_run(ClusterConfig::new(2).with_tcp_transport(), 6, 1.0);
        let solo_b = solo_run(ClusterConfig::new(2).with_tcp_transport(), 6, 2.5);
        assert_eq!(solo_a, closed_form(6, 1.0));
        assert_eq!(solo_b, closed_form(6, 2.5));
        let (outputs, stats) = concurrent_run(
            ClusterConfig::new(2).with_tcp_transport(),
            6,
            &[1.0, 2.5],
            None,
        );
        assert_eq!(outputs[0], solo_a);
        assert_eq!(outputs[1], solo_b);
        assert_eq!(stats.controller_templates_installed, 2);
    });
}

/// Fairness: a chatty session flooding pipelined instantiations does not
/// change the other session's results (round-robin servicing interleaves
/// them at the controller).
#[test]
fn a_flooding_job_does_not_disturb_a_small_one() {
    with_timeout("flood-fairness", Duration::from_secs(120), || {
        let (outputs, _) = concurrent_run(ClusterConfig::new(2), 24, &[1.0, 3.0], None);
        assert_eq!(outputs[0], closed_form(24, 1.0));
        assert_eq!(outputs[1], closed_form(24, 3.0));
    });
}

/// Job isolation under churn, per the issue's satellite: two concurrent
/// jobs, kill + rejoin a worker mid-flight (each job has an instantiation
/// in the air when the worker dies), and both jobs' outputs stay
/// byte-identical to their solo runs; neither observes the other's
/// recovery beyond sharing the readmitted worker. Runs over TCP.
#[test]
fn two_jobs_survive_worker_churn_isolated_tcp() {
    churned_isolation(
        ClusterConfig::new(2)
            .with_tcp_transport()
            .with_checkpoint_every(2)
            .with_rejoin_grace(Duration::from_secs(30)),
        "churn-tcp",
    );
}

/// The same churn isolation on the in-process transport: the fabric's
/// injectable disconnect makes kill/rejoin fault injection transport-
/// independent.
#[test]
fn two_jobs_survive_worker_churn_isolated_in_process() {
    churned_isolation(
        ClusterConfig::new(2)
            .with_checkpoint_every(2)
            .with_rejoin_grace(Duration::from_secs(30)),
        "churn-inproc",
    );
}

fn churned_isolation(config: ClusterConfig, name: &str) {
    let (outputs, stats) = with_timeout(name, Duration::from_secs(120), move || {
        concurrent_run(
            config,
            12,
            &[1.0, 2.5],
            Some((
                6,
                Box::new(|cluster: &mut Cluster| {
                    cluster.kill_worker(WorkerId(0));
                    std::thread::sleep(Duration::from_millis(500));
                    cluster.rejoin_worker(WorkerId(0));
                }),
            )),
        )
    });
    assert_eq!(
        outputs[0],
        closed_form(12, 1.0),
        "job A diverged after churn"
    );
    assert_eq!(
        outputs[1],
        closed_form(12, 2.5),
        "job B diverged after churn"
    );
    // Zero template re-recordings for either job: each job's one
    // pre-failure recording served its whole run; the rejoin was handled
    // with per-job template reinstalls, edits, and patches only.
    assert_eq!(
        stats.controller_templates_installed, 2,
        "a job re-recorded its template during the shared recovery"
    );
    // The one worker death triggered one *per-job* recovery each (both
    // jobs had state on the dead worker), and one shared readmission.
    assert_eq!(stats.failures_handled, 2);
    assert_eq!(stats.rejoins_handled, 1);
    // Both jobs auto-checkpointed along the way. (How many entries each
    // replayed depends on where the kill lands relative to a job's latest
    // auto-checkpoint commit — a window can legitimately be empty — so
    // replay counts are not asserted here; `raw_submit_stream_recovers_
    // byte_exact` in the churn suite pins replay exactness with a
    // deterministic checkpoint placement, and the byte-identical outputs
    // above are the acceptance property.)
    assert!(stats.checkpoints_committed >= 2);
}
