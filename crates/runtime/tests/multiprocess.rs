//! Multi-process integration tests: the quickstart job across real OS
//! process boundaries (1 `nimbus-controller` + 2 `nimbus-worker` processes
//! over TCP loopback), plus fault injection by killing a worker process
//! mid-job.

use std::io::Read;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use nimbus_runtime::quickstart::{quickstart_driver, quickstart_setup, PARTITIONS, PARTITION_LEN};
use nimbus_runtime::{Cluster, ClusterConfig};

/// Reserves a free loopback address. The listener is dropped before the
/// process binds it, which is racy in principle but reliable on a loopback
/// interface with OS-assigned ports.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().to_string()
}

/// The shared cluster layout: every process gets the same address map, and
/// every worker the same extra flags (e.g. a shared `--vault-dir`).
struct ClusterMap {
    controller_addr: String,
    driver_addr: String,
    worker_addrs: [String; 2],
    worker_flags: Vec<String>,
}

impl ClusterMap {
    fn new(worker_flags: &[&str]) -> Self {
        Self {
            controller_addr: free_addr(),
            driver_addr: free_addr(),
            worker_addrs: [free_addr(), free_addr()],
            worker_flags: worker_flags.iter().map(|f| f.to_string()).collect(),
        }
    }

    fn map_flags(&self, args: &mut Command) {
        args.arg("--controller")
            .arg(&self.controller_addr)
            .arg("--driver")
            .arg(&self.driver_addr)
            .arg("--worker")
            .arg(format!("0={}", self.worker_addrs[0]))
            .arg("--worker")
            .arg(format!("1={}", self.worker_addrs[1]));
    }

    fn spawn_worker(&self, id: usize, rejoin: bool) -> Child {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nimbus-worker"));
        self.map_flags(&mut cmd);
        cmd.arg("--id").arg(id.to_string());
        for flag in &self.worker_flags {
            cmd.arg(flag);
        }
        if rejoin {
            cmd.arg("--rejoin");
        }
        cmd.stdout(Stdio::null()).stderr(Stdio::null());
        cmd.spawn().expect("spawn worker")
    }
}

struct ClusterProcs {
    controller: Child,
    workers: Vec<Child>,
    map: ClusterMap,
}

impl ClusterProcs {
    /// Spawns 2 workers and 1 controller with a shared address map.
    fn spawn(extra_controller_flags: &[&str]) -> Self {
        Self::spawn_with_worker_flags(extra_controller_flags, &[])
    }

    /// Spawns 2 workers (each given `worker_flags`) and 1 controller with a
    /// shared address map.
    fn spawn_with_worker_flags(extra_controller_flags: &[&str], worker_flags: &[&str]) -> Self {
        let map = ClusterMap::new(worker_flags);
        let workers = (0..2).map(|id| map.spawn_worker(id, false)).collect();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nimbus-controller"));
        map.map_flags(&mut cmd);
        for flag in extra_controller_flags {
            cmd.arg(flag);
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        let controller = cmd.spawn().expect("spawn controller");
        Self {
            controller,
            workers,
            map,
        }
    }

    /// Restarts worker `id` as a fresh process on its original address, with
    /// `--rejoin`.
    fn respawn_worker(&mut self, id: usize) {
        let child = self.map.spawn_worker(id, true);
        self.workers[id] = child;
    }

    /// Waits for the controller to exit, killing everything on timeout.
    fn wait_controller(&mut self, timeout: Duration) -> (i32, String, String) {
        let deadline = Instant::now() + timeout;
        let status = loop {
            match self.controller.try_wait().expect("poll controller") {
                Some(status) => break status,
                None if Instant::now() >= deadline => {
                    self.kill_all();
                    panic!("controller did not exit within {timeout:?} (job hung)");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        };
        let mut stdout = String::new();
        let mut stderr = String::new();
        if let Some(out) = self.controller.stdout.as_mut() {
            out.read_to_string(&mut stdout).ok();
        }
        if let Some(err) = self.controller.stderr.as_mut() {
            err.read_to_string(&mut stderr).ok();
        }
        (status.code().unwrap_or(-1), stdout, stderr)
    }

    /// Waits for every worker process to exit (they must not linger).
    fn wait_workers(&mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        for (i, worker) in self.workers.iter_mut().enumerate() {
            loop {
                match worker.try_wait().expect("poll worker") {
                    Some(_) => break,
                    None if Instant::now() >= deadline => {
                        worker.kill().ok();
                        panic!("worker {i} did not exit after the job ended");
                    }
                    None => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
    }

    fn kill_all(&mut self) {
        self.controller.kill().ok();
        for w in &mut self.workers {
            w.kill().ok();
        }
    }
}

impl Drop for ClusterProcs {
    fn drop(&mut self) {
        self.kill_all();
    }
}

fn iteration_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| l.starts_with("iteration "))
        .map(|l| l.to_string())
        .collect()
}

/// Acceptance: the quickstart job produces identical per-iteration output
/// in-process and across separate OS processes.
#[test]
fn quickstart_across_processes_matches_in_process_run() {
    // Reference run: the same driver program on an in-process cluster.
    let report = Cluster::start(ClusterConfig::new(2), quickstart_setup())
        .run_driver(|ctx| quickstart_driver(ctx, 10))
        .expect("in-process run completes");
    let reference: Vec<String> = report
        .output
        .iter()
        .enumerate()
        .map(|(i, total)| format!("iteration {i}: total = {total}"))
        .collect();
    let expected: Vec<f64> = (1..=10)
        .map(|i| (i * PARTITIONS as usize * PARTITION_LEN) as f64)
        .collect();
    assert_eq!(report.output, expected);

    // Multi-process run: 1 controller process + 2 worker processes.
    let mut procs = ClusterProcs::spawn(&["--iterations", "10"]);
    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_eq!(
        code, 0,
        "controller failed.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert_eq!(
        iteration_lines(&stdout),
        reference,
        "multi-process output diverges from in-process output"
    );
    assert!(
        stdout.contains("job complete"),
        "missing completion marker:\n{stdout}"
    );
    procs.wait_workers(Duration::from_secs(30));
}

/// Fault injection with checkpoints: killing a worker process mid-job — with
/// the driver almost certainly blocked inside a fetch — must run the
/// checkpoint recovery path, answer the interrupted fetch against recovered
/// state, and let the job run to completion.
#[test]
fn killed_worker_process_recovers_from_checkpoint_and_completes() {
    let mut procs = ClusterProcs::spawn(&[
        "--iterations",
        "120",
        "--iter-sleep-ms",
        "30",
        "--checkpoint-every",
        "3",
        "--reply-timeout-secs",
        "30",
    ]);
    std::thread::sleep(Duration::from_secs(1));
    procs.workers[0].kill().expect("kill worker 0");

    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_eq!(
        code, 0,
        "job should recover and complete.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // Every iteration completed: the one interrupted by the failure was
    // resumed after recovery, not dropped. (Values after the failure may
    // diverge — the dead worker's vault died with its process — but the
    // control plane must drive the job to the end.)
    assert_eq!(iteration_lines(&stdout).len(), 120, "stdout:\n{stdout}");
    assert!(stdout.contains("job complete"), "stdout:\n{stdout}");
    procs.wait_workers(Duration::from_secs(30));
}

/// Acceptance, real OS processes: a worker process killed mid-job is
/// restarted with `--rejoin` and the job completes with output
/// *byte-identical* to an undisturbed run, with zero template re-recordings.
/// Requires a shared file-backed vault (`--vault-dir`) so the checkpoint
/// entries the dead worker saved survive it, and a controller rejoin grace
/// window so recovery waits for the restart instead of evicting the worker.
#[test]
fn killed_worker_process_rejoins_and_output_is_byte_identical() {
    let iterations = 60u32;
    let vault_dir = std::env::temp_dir().join(format!(
        "nimbus-churn-vault-{}-{}",
        std::process::id(),
        free_addr().replace(':', "-")
    ));
    let vault_flag = vault_dir.to_string_lossy().to_string();
    let mut procs = ClusterProcs::spawn_with_worker_flags(
        &[
            "--iterations",
            "60",
            "--iter-sleep-ms",
            "30",
            "--checkpoint-every",
            "3",
            "--reply-timeout-secs",
            "60",
            "--rejoin-grace-secs",
            "30",
        ],
        &["--vault-dir", &vault_flag],
    );
    // Kill worker 0 mid-job — the driver is likely blocked inside a fetch —
    // then restart it under the same identity after a short outage.
    std::thread::sleep(Duration::from_secs(1));
    procs.workers[0].kill().expect("kill worker 0");
    procs.workers[0].wait().expect("reap worker 0");
    std::thread::sleep(Duration::from_millis(500));
    procs.respawn_worker(0);

    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_eq!(
        code, 0,
        "job should rejoin and complete.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // Byte-identical output: every iteration's total matches the closed form
    // of an undisturbed run.
    let expected: Vec<String> = (0..iterations)
        .map(|i| {
            let total = ((i + 1) as usize * PARTITIONS as usize * PARTITION_LEN) as f64;
            format!("iteration {i}: total = {total}")
        })
        .collect();
    assert_eq!(
        iteration_lines(&stdout),
        expected,
        "rejoined run diverges from the undisturbed run:\n{stdout}"
    );
    // Zero template re-recordings: the single pre-failure recording served
    // the whole job (the completion line reports installed template count).
    assert!(
        stdout.contains("templates installed = 1,"),
        "expected exactly one template recording:\n{stdout}"
    );
    procs.wait_workers(Duration::from_secs(30));
    std::fs::remove_dir_all(&vault_dir).ok();
}

/// Fault injection, total loss: killing *every* worker process — the second
/// one mid-recovery — must still surface a clean driver error, not wedge the
/// recovery waiting for a halt acknowledgement that can never arrive.
#[test]
fn killing_every_worker_process_surfaces_clean_error_not_a_wedge() {
    let mut procs = ClusterProcs::spawn(&[
        "--iterations",
        "10000",
        "--iter-sleep-ms",
        "10",
        "--checkpoint-every",
        "3",
        "--reply-timeout-secs",
        "20",
    ]);
    std::thread::sleep(Duration::from_secs(2));
    procs.workers[0].kill().expect("kill worker 0");
    procs.workers[1].kill().expect("kill worker 1");

    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_ne!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stderr.contains("driver error"),
        "expected a clean driver error:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

/// Fault injection: killing a worker process mid-job must surface a clean
/// `driver error` (no checkpoint was taken) — never a hang — and the
/// surviving worker must exit afterwards.
#[test]
fn killed_worker_process_surfaces_clean_driver_error() {
    let mut procs = ClusterProcs::spawn(&[
        "--iterations",
        "10000",
        "--iter-sleep-ms",
        "10",
        "--reply-timeout-secs",
        "20",
    ]);
    // Let the job get going, then kill worker 0 abruptly mid-job.
    std::thread::sleep(Duration::from_secs(2));
    procs.workers[0].kill().expect("kill worker 0");

    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_ne!(
        code, 0,
        "without a checkpoint the driver must fail.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("driver error"),
        "expected a clean driver error, got:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // The job made progress before the failure...
    assert!(
        !iteration_lines(&stdout).is_empty(),
        "worker was killed before the job started:\n{stdout}"
    );
    // ...and no process lingers: the controller shut the survivor down (or
    // the survivor noticed the controller leaving).
    procs.wait_workers(Duration::from_secs(30));
}
