//! Multi-process integration tests: the quickstart job across real OS
//! process boundaries (1 `nimbus-controller` + 2 `nimbus-worker` processes
//! over TCP loopback), plus fault injection by killing a worker process
//! mid-job.

use std::io::Read;
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use nimbus_runtime::quickstart::{quickstart_driver, quickstart_setup, PARTITIONS, PARTITION_LEN};
use nimbus_runtime::{Cluster, ClusterConfig};

/// Reserves a free loopback address. The listener is dropped before the
/// process binds it, which is racy in principle but reliable on a loopback
/// interface with OS-assigned ports.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().to_string()
}

struct ClusterProcs {
    controller: Child,
    workers: Vec<Child>,
}

impl ClusterProcs {
    /// Spawns 2 workers and 1 controller with a shared address map.
    fn spawn(extra_controller_flags: &[&str]) -> Self {
        let controller_addr = free_addr();
        let driver_addr = free_addr();
        let worker_addrs = [free_addr(), free_addr()];
        let map_flags = |args: &mut Command| {
            args.arg("--controller")
                .arg(&controller_addr)
                .arg("--driver")
                .arg(&driver_addr)
                .arg("--worker")
                .arg(format!("0={}", worker_addrs[0]))
                .arg("--worker")
                .arg(format!("1={}", worker_addrs[1]));
        };
        let mut workers = Vec::new();
        for id in 0..2 {
            let mut cmd = Command::new(env!("CARGO_BIN_EXE_nimbus-worker"));
            map_flags(&mut cmd);
            cmd.arg("--id").arg(id.to_string());
            cmd.stdout(Stdio::null()).stderr(Stdio::null());
            workers.push(cmd.spawn().expect("spawn worker"));
        }
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nimbus-controller"));
        map_flags(&mut cmd);
        for flag in extra_controller_flags {
            cmd.arg(flag);
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        let controller = cmd.spawn().expect("spawn controller");
        Self {
            controller,
            workers,
        }
    }

    /// Waits for the controller to exit, killing everything on timeout.
    fn wait_controller(&mut self, timeout: Duration) -> (i32, String, String) {
        let deadline = Instant::now() + timeout;
        let status = loop {
            match self.controller.try_wait().expect("poll controller") {
                Some(status) => break status,
                None if Instant::now() >= deadline => {
                    self.kill_all();
                    panic!("controller did not exit within {timeout:?} (job hung)");
                }
                None => std::thread::sleep(Duration::from_millis(20)),
            }
        };
        let mut stdout = String::new();
        let mut stderr = String::new();
        if let Some(out) = self.controller.stdout.as_mut() {
            out.read_to_string(&mut stdout).ok();
        }
        if let Some(err) = self.controller.stderr.as_mut() {
            err.read_to_string(&mut stderr).ok();
        }
        (status.code().unwrap_or(-1), stdout, stderr)
    }

    /// Waits for every worker process to exit (they must not linger).
    fn wait_workers(&mut self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        for (i, worker) in self.workers.iter_mut().enumerate() {
            loop {
                match worker.try_wait().expect("poll worker") {
                    Some(_) => break,
                    None if Instant::now() >= deadline => {
                        worker.kill().ok();
                        panic!("worker {i} did not exit after the job ended");
                    }
                    None => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        }
    }

    fn kill_all(&mut self) {
        self.controller.kill().ok();
        for w in &mut self.workers {
            w.kill().ok();
        }
    }
}

impl Drop for ClusterProcs {
    fn drop(&mut self) {
        self.kill_all();
    }
}

fn iteration_lines(stdout: &str) -> Vec<String> {
    stdout
        .lines()
        .filter(|l| l.starts_with("iteration "))
        .map(|l| l.to_string())
        .collect()
}

/// Acceptance: the quickstart job produces identical per-iteration output
/// in-process and across separate OS processes.
#[test]
fn quickstart_across_processes_matches_in_process_run() {
    // Reference run: the same driver program on an in-process cluster.
    let report = Cluster::start(ClusterConfig::new(2), quickstart_setup())
        .run_driver(|ctx| quickstart_driver(ctx, 10))
        .expect("in-process run completes");
    let reference: Vec<String> = report
        .output
        .iter()
        .enumerate()
        .map(|(i, total)| format!("iteration {i}: total = {total}"))
        .collect();
    let expected: Vec<f64> = (1..=10)
        .map(|i| (i * PARTITIONS as usize * PARTITION_LEN) as f64)
        .collect();
    assert_eq!(report.output, expected);

    // Multi-process run: 1 controller process + 2 worker processes.
    let mut procs = ClusterProcs::spawn(&["--iterations", "10"]);
    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_eq!(
        code, 0,
        "controller failed.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert_eq!(
        iteration_lines(&stdout),
        reference,
        "multi-process output diverges from in-process output"
    );
    assert!(
        stdout.contains("job complete"),
        "missing completion marker:\n{stdout}"
    );
    procs.wait_workers(Duration::from_secs(30));
}

/// Fault injection with checkpoints: killing a worker process mid-job — with
/// the driver almost certainly blocked inside a fetch — must run the
/// checkpoint recovery path, answer the interrupted fetch against recovered
/// state, and let the job run to completion.
#[test]
fn killed_worker_process_recovers_from_checkpoint_and_completes() {
    let mut procs = ClusterProcs::spawn(&[
        "--iterations",
        "120",
        "--iter-sleep-ms",
        "30",
        "--checkpoint-every",
        "3",
        "--reply-timeout-secs",
        "30",
    ]);
    std::thread::sleep(Duration::from_secs(1));
    procs.workers[0].kill().expect("kill worker 0");

    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_eq!(
        code, 0,
        "job should recover and complete.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // Every iteration completed: the one interrupted by the failure was
    // resumed after recovery, not dropped. (Values after the failure may
    // diverge — the dead worker's vault died with its process — but the
    // control plane must drive the job to the end.)
    assert_eq!(iteration_lines(&stdout).len(), 120, "stdout:\n{stdout}");
    assert!(stdout.contains("job complete"), "stdout:\n{stdout}");
    procs.wait_workers(Duration::from_secs(30));
}

/// Fault injection, total loss: killing *every* worker process — the second
/// one mid-recovery — must still surface a clean driver error, not wedge the
/// recovery waiting for a halt acknowledgement that can never arrive.
#[test]
fn killing_every_worker_process_surfaces_clean_error_not_a_wedge() {
    let mut procs = ClusterProcs::spawn(&[
        "--iterations",
        "10000",
        "--iter-sleep-ms",
        "10",
        "--checkpoint-every",
        "3",
        "--reply-timeout-secs",
        "20",
    ]);
    std::thread::sleep(Duration::from_secs(2));
    procs.workers[0].kill().expect("kill worker 0");
    procs.workers[1].kill().expect("kill worker 1");

    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_ne!(code, 0, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(
        stderr.contains("driver error"),
        "expected a clean driver error:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
}

/// Fault injection: killing a worker process mid-job must surface a clean
/// `driver error` (no checkpoint was taken) — never a hang — and the
/// surviving worker must exit afterwards.
#[test]
fn killed_worker_process_surfaces_clean_driver_error() {
    let mut procs = ClusterProcs::spawn(&[
        "--iterations",
        "10000",
        "--iter-sleep-ms",
        "10",
        "--reply-timeout-secs",
        "20",
    ]);
    // Let the job get going, then kill worker 0 abruptly mid-job.
    std::thread::sleep(Duration::from_secs(2));
    procs.workers[0].kill().expect("kill worker 0");

    let (code, stdout, stderr) = procs.wait_controller(Duration::from_secs(120));
    assert_ne!(
        code, 0,
        "without a checkpoint the driver must fail.\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stderr.contains("driver error"),
        "expected a clean driver error, got:\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    // The job made progress before the failure...
    assert!(
        !iteration_lines(&stdout).is_empty(),
        "worker was killed before the job started:\n{stdout}"
    );
    // ...and no process lingers: the controller shut the survivor down (or
    // the survivor noticed the controller leaving).
    procs.wait_workers(Duration::from_secs(30));
}
