//! Transport integration tests: the same job must behave identically on the
//! in-process fabric and on TCP loopback sockets, recovery must work across
//! the wire, and cluster teardown must not leak threads.

use std::time::Duration;

use nimbus_core::appdata::{Scalar, VecF64};
use nimbus_core::TaskParams;
use nimbus_driver::{Dataset, DriverContext, DriverResult, StageSpec};
use nimbus_runtime::quickstart::{
    quickstart_driver, quickstart_setup, ADD, PARTITIONS, PARTITION_LEN, SUM,
};
use nimbus_runtime::{Cluster, ClusterConfig};

/// Acceptance: the quickstart example produces identical output on the
/// in-process transport and on TCP.
#[test]
fn quickstart_output_is_identical_on_both_transports() {
    let run = |config: ClusterConfig| {
        Cluster::start(config, quickstart_setup())
            .run_driver(|ctx| quickstart_driver(ctx, 6))
            .expect("job completes")
    };
    let in_process = run(ClusterConfig::new(3));
    let tcp = run(ClusterConfig::new(3).with_tcp_transport());

    assert_eq!(
        in_process.output, tcp.output,
        "totals diverge across transports"
    );
    let expected: Vec<f64> = (1..=6)
        .map(|i| (i * PARTITIONS as usize * PARTITION_LEN) as f64)
        .collect();
    assert_eq!(tcp.output, expected);

    // Templates work identically across the wire.
    assert_eq!(
        in_process.controller.controller_templates_installed,
        tcp.controller.controller_templates_installed
    );
    assert_eq!(
        in_process.controller.controller_template_instantiations,
        tcp.controller.controller_template_instantiations
    );
    // Both fabrics account traffic; the TCP fabric must have seen at least
    // every control message the in-process one did (it adds nothing extra
    // besides transport events, which are local and unsent).
    assert!(tcp.network.messages > 0);
    assert!(tcp.network.control_bytes > 0);
}

/// Recovery via the checkpoint path works when every message crosses a real
/// socket: fail a worker mid-job and verify the job still finishes with the
/// right answer.
#[test]
fn tcp_cluster_recovers_a_failed_worker_from_checkpoint() {
    let cluster = Cluster::start(
        ClusterConfig::new(3).with_tcp_transport(),
        quickstart_setup(),
    );
    let report = cluster
        .run_driver(|ctx| {
            let data: Dataset<VecF64> = ctx.define_dataset("data", PARTITIONS)?;
            let add = |ctx: &mut DriverContext| -> DriverResult<()> {
                ctx.submit_stage(
                    StageSpec::new("add", ADD)
                        .write(&data)
                        .params(TaskParams::from_scalar(1.0)),
                )
            };
            add(ctx)?;
            ctx.checkpoint(1)?;
            add(ctx)?;
            ctx.barrier()?;
            // Abrupt failure: the controller halts survivors and restores
            // the checkpoint (progress marker 1, one add applied).
            let marker = ctx.fail_worker(nimbus_core::ids::WorkerId(0))?;
            assert_eq!(marker, 1);
            add(ctx)?;
            ctx.barrier()?;
            // After recovery + one more add every element is 2.0.
            let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
            let mut sum = StageSpec::new("sum", SUM).partitions(1);
            for p in 0..data.partitions {
                sum = sum.read_partition(&data, p);
            }
            ctx.submit_stage(sum.write_partition(&total, 0))?;
            ctx.fetch(&total, 0)
        })
        .expect("job completes after recovery");
    assert_eq!(
        report.output,
        2.0 * (PARTITIONS as usize * PARTITION_LEN) as f64
    );
    assert_eq!(report.controller.failures_handled, 1);
    assert_eq!(report.controller.checkpoints_committed, 1);
}

/// Satellite: a cluster with latency enabled shuts down cleanly and promptly
/// — the delayer thread is joined, not leaked.
#[test]
fn latency_cluster_shuts_down_cleanly() {
    let cluster = Cluster::start(
        ClusterConfig::new(2).with_latency(Duration::from_millis(2)),
        quickstart_setup(),
    );
    let report = cluster
        .run_driver(|ctx| quickstart_driver(ctx, 2))
        .expect("job completes");
    assert_eq!(report.output.len(), 2);

    // `run_driver` consumed and dropped the cluster (and its network); the
    // delayer must already be gone.
    if cfg!(target_os = "linux") {
        let leaked = nimbus_net::diagnostics::wait_for_no_thread_with_prefix(
            "nimbus-net-dela",
            Duration::from_secs(5),
        );
        assert!(
            leaked.is_none(),
            "delayer thread leaked after cluster shutdown: {leaked:?}"
        );
    }
}

/// TCP clusters also tear down without leaking transport threads.
#[test]
fn tcp_cluster_shuts_down_without_leaking_threads() {
    let cluster = Cluster::start(
        ClusterConfig::new(2).with_tcp_transport(),
        quickstart_setup(),
    );
    let report = cluster
        .run_driver(|ctx| quickstart_driver(ctx, 2))
        .expect("job completes");
    assert_eq!(report.output.len(), 2);
    if cfg!(target_os = "linux") {
        // Reader/acceptor threads wind down within their poll interval.
        let leaked = nimbus_net::diagnostics::wait_for_no_thread_with_prefix(
            "nimbus-tcp",
            Duration::from_secs(10),
        );
        assert!(
            leaked.is_none(),
            "transport threads leaked after cluster shutdown: {leaked:?}"
        );
    }
}
