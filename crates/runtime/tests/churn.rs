//! Membership-churn tests over TCP loopback threads: a worker killed mid-job
//! rejoins and the job completes with output *byte-identical* to an
//! undisturbed run, with zero template re-recordings (edits and patches
//! only) — the paper's core claim that cluster changes are template edits,
//! not job restarts.
//!
//! Every test runs under an explicit watchdog: a wedged rejoin must fail in
//! seconds, not hang the suite.

use std::time::Duration;

use nimbus_core::ids::WorkerId;
use nimbus_runtime::quickstart::{quickstart_setup, PARTITIONS, PARTITION_LEN};
use nimbus_runtime::{Cluster, ClusterConfig, ClusterReport};

/// Hard per-test timeout: the body runs in its own thread; if it has not
/// finished in `limit`, the test fails immediately instead of hanging the
/// suite (and CI) on a wedged recovery.
fn with_timeout<T: Send + 'static>(
    name: &str,
    limit: Duration,
    body: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let thread = std::thread::Builder::new()
        .name(format!("churn-{name}"))
        .spawn(move || {
            let _ = tx.send(body());
        })
        .expect("spawn test body");
    match rx.recv_timeout(limit) {
        Ok(value) => {
            thread.join().expect("test body panicked");
            value
        }
        Err(_) => panic!("{name} did not finish within {limit:?} (wedged rejoin?)"),
    }
}

/// The closed-form totals of `iterations` quickstart iterations — what an
/// undisturbed run produces (asserted by the quickstart's own tests), so a
/// churned run matching this is byte-identical to the undisturbed baseline.
fn closed_form(iterations: u32) -> Vec<f64> {
    (1..=iterations)
        .map(|i| (i as usize * PARTITIONS as usize * PARTITION_LEN) as f64)
        .collect()
}

/// When, within the churn iteration, the membership change happens.
enum ChurnPoint {
    /// After the iteration's fetch returned: the cluster is quiescent.
    AfterFetch(u32),
    /// Between the block's (fire-and-forget) instantiation message and the
    /// synchronous fetch: the iteration's commands are still in flight when
    /// the worker dies, exercising the interrupted-sync resume path.
    BeforeFetch(u32),
}

impl ChurnPoint {
    fn iteration(&self) -> u32 {
        match self {
            ChurnPoint::AfterFetch(i) | ChurnPoint::BeforeFetch(i) => *i,
        }
    }
}

/// Runs `iterations` quickstart iterations, invoking `churn` with the
/// cluster at the configured churn point.
fn run_churned(
    config: ClusterConfig,
    iterations: u32,
    point: ChurnPoint,
    churn: impl FnOnce(&mut Cluster) + Send + 'static,
) -> ClusterReport<Vec<f64>> {
    let cluster = Cluster::start(config, quickstart_setup());
    let mut churn = Some(churn);
    cluster
        .run_driver_with_cluster(move |ctx, cluster| {
            use nimbus_core::appdata::{Scalar, VecF64};
            use nimbus_core::TaskParams;
            use nimbus_driver::{Dataset, StageSpec};
            use nimbus_runtime::quickstart::{ADD, SUM};

            let data: Dataset<VecF64> = ctx.define_dataset("data", PARTITIONS)?;
            let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
            let mut totals = Vec::with_capacity(iterations as usize);
            for i in 0..iterations {
                ctx.block("inner", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("add", ADD)
                            .write(&data)
                            .params(TaskParams::from_scalar(1.0)),
                    )?;
                    let mut sum = StageSpec::new("sum", SUM).partitions(1);
                    for p in 0..data.partitions {
                        sum = sum.read_partition(&data, p);
                    }
                    ctx.submit_stage(sum.write_partition(&total, 0))?;
                    Ok(())
                })?;
                if matches!(point, ChurnPoint::BeforeFetch(_)) && i == point.iteration() {
                    if let Some(churn) = churn.take() {
                        churn(cluster);
                    }
                }
                totals.push(ctx.fetch(&total, 0)?);
                if i == point.iteration() {
                    if let Some(churn) = churn.take() {
                        churn(cluster);
                    }
                }
            }
            Ok(totals)
        })
        .expect("churned job completes")
}

/// Kills a worker, waits for the controller to observe the death and open
/// its rejoin grace window, then brings the worker back under the same
/// identity.
fn kill_then_rejoin(worker: WorkerId) -> impl FnOnce(&mut Cluster) + Send + 'static {
    move |cluster: &mut Cluster| {
        cluster.kill_worker(worker);
        std::thread::sleep(Duration::from_millis(500));
        cluster.rejoin_worker(worker);
    }
}

/// Acceptance: a worker killed mid-job rejoins over TCP loopback and the
/// job's output is byte-identical to an undisturbed run, with zero template
/// re-recordings — the block was recorded exactly once, before the failure,
/// and every post-rejoin adjustment happened through installed-template
/// reinstalls, edits, and patches.
#[test]
fn killed_worker_rejoins_and_output_is_byte_identical() {
    let report = with_timeout("kill-rejoin", Duration::from_secs(120), || {
        run_churned(
            ClusterConfig::new(2)
                .with_tcp_transport()
                .with_checkpoint_every(3)
                .with_rejoin_grace(Duration::from_secs(30)),
            20,
            ChurnPoint::AfterFetch(10),
            kill_then_rejoin(WorkerId(0)),
        )
    });
    assert_eq!(
        report.output,
        closed_form(20),
        "churned output diverges from the undisturbed run"
    );
    // Zero re-recordings: the one pre-failure recording served the whole
    // job; the rejoin was handled with template edits/reinstalls only.
    assert_eq!(
        report.controller.controller_templates_installed, 1,
        "rejoin must not re-record templates"
    );
    assert_eq!(report.controller.failures_handled, 1);
    assert_eq!(report.controller.rejoins_handled, 1);
    // With checkpoints every 3 instantiations, the failure after iteration
    // 10 rolled back to an earlier checkpoint; the controller replayed the
    // gap itself — no driver involvement.
    assert!(
        report.controller.instantiations_replayed >= 1,
        "expected the controller to replay the post-checkpoint gap, got {}",
        report.controller.instantiations_replayed
    );
    assert!(report.controller.checkpoints_committed >= 3);
}

/// The same churn with the iteration's commands still in flight (the driver
/// blocked in the fetch right after): the interrupted fetch must resume
/// against recovered-and-replayed state and produce the exact value.
#[test]
fn kill_with_commands_in_flight_is_still_byte_identical() {
    let report = with_timeout("kill-mid-flight", Duration::from_secs(120), || {
        run_churned(
            ClusterConfig::new(2)
                .with_tcp_transport()
                .with_checkpoint_every(1)
                .with_spin_wait(Duration::from_millis(2))
                .with_rejoin_grace(Duration::from_secs(30)),
            14,
            ChurnPoint::BeforeFetch(6),
            kill_then_rejoin(WorkerId(1)),
        )
    });
    assert_eq!(report.output, closed_form(14));
    assert_eq!(report.controller.controller_templates_installed, 1);
    assert_eq!(report.controller.failures_handled, 1);
    assert_eq!(report.controller.rejoins_handled, 1);
}

/// Losing the *last* worker with a rejoin grace configured, and having the
/// grace expire without a return, must surface a clean driver error — not
/// panic the controller on a workerless recovery or hang the job.
#[test]
fn last_worker_lost_and_never_rejoining_errors_cleanly() {
    let result = with_timeout("last-worker-lost", Duration::from_secs(60), || {
        let cluster = Cluster::start(
            ClusterConfig::new(1)
                .with_tcp_transport()
                .with_checkpoint_every(1)
                .with_rejoin_grace(Duration::from_millis(500)),
            quickstart_setup(),
        );
        cluster.run_driver_with_cluster(|ctx, cluster| {
            use nimbus_runtime::quickstart::quickstart_driver;
            ctx.set_reply_timeout(Duration::from_secs(20));
            quickstart_driver(ctx, 3)?;
            cluster.kill_worker(WorkerId(0));
            // The grace window expires with nobody left to recover onto.
            quickstart_driver(ctx, 3)
        })
    });
    let message = match result {
        Ok(_) => panic!("a workerless job must fail"),
        Err(err) => err.to_string(),
    };
    assert!(
        message.contains("disconnected") || message.contains("no workers"),
        "expected a clean no-workers error, got: {message}"
    );
}

/// Elastic growth: a brand-new worker joins a running job and is served
/// through template edits — it executes its migrated share of tasks, the
/// outputs stay byte-identical, and nothing is re-recorded.
#[test]
fn added_worker_joins_via_edits_and_executes_tasks() {
    let report = with_timeout("elastic-add", Duration::from_secs(120), || {
        run_churned(
            ClusterConfig::new(2).with_tcp_transport(),
            16,
            ChurnPoint::AfterFetch(5),
            |cluster: &mut Cluster| {
                cluster.add_worker();
            },
        )
    });
    assert_eq!(report.output, closed_form(16));
    assert_eq!(
        report.controller.controller_templates_installed, 1,
        "elastic join must not re-record templates"
    );
    assert_eq!(report.controller.rejoins_handled, 1);
    assert!(
        report.controller.edits_applied > 0,
        "the joining worker's share must arrive as template edits"
    );
    // All three workers (the two originals and the late joiner) did real
    // work.
    assert_eq!(report.workers.len(), 3);
    for (i, w) in report.workers.iter().enumerate() {
        assert!(w.tasks_executed > 0, "worker #{i} executed no tasks");
    }
}
