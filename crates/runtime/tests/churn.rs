//! Membership-churn tests over TCP loopback threads: a worker killed mid-job
//! rejoins and the job completes with output *byte-identical* to an
//! undisturbed run, with zero template re-recordings (edits and patches
//! only) — the paper's core claim that cluster changes are template edits,
//! not job restarts.
//!
//! Every test runs under an explicit watchdog: a wedged rejoin must fail in
//! seconds, not hang the suite.

use std::time::Duration;

use nimbus_core::ids::WorkerId;
use nimbus_runtime::quickstart::{quickstart_setup, PARTITIONS, PARTITION_LEN};
use nimbus_runtime::{Cluster, ClusterConfig, ClusterReport};

mod common;
use common::with_timeout;

/// The closed-form totals of `iterations` quickstart iterations — what an
/// undisturbed run produces (asserted by the quickstart's own tests), so a
/// churned run matching this is byte-identical to the undisturbed baseline.
fn closed_form(iterations: u32) -> Vec<f64> {
    (1..=iterations)
        .map(|i| (i as usize * PARTITIONS as usize * PARTITION_LEN) as f64)
        .collect()
}

/// When, within the churn iteration, the membership change happens.
enum ChurnPoint {
    /// After the iteration's fetch returned: the cluster is quiescent.
    AfterFetch(u32),
    /// Between the block's (fire-and-forget) instantiation message and the
    /// synchronous fetch: the iteration's commands are still in flight when
    /// the worker dies, exercising the interrupted-sync resume path.
    BeforeFetch(u32),
}

impl ChurnPoint {
    fn iteration(&self) -> u32 {
        match self {
            ChurnPoint::AfterFetch(i) | ChurnPoint::BeforeFetch(i) => *i,
        }
    }
}

/// Runs `iterations` quickstart iterations, invoking `churn` with the
/// cluster at the configured churn point.
fn run_churned(
    config: ClusterConfig,
    iterations: u32,
    point: ChurnPoint,
    churn: impl FnOnce(&mut Cluster) + Send + 'static,
) -> ClusterReport<Vec<f64>> {
    let cluster = Cluster::start(config, quickstart_setup());
    let mut churn = Some(churn);
    cluster
        .run_driver_with_cluster(move |ctx, cluster| {
            use nimbus_core::appdata::{Scalar, VecF64};
            use nimbus_core::TaskParams;
            use nimbus_driver::{Dataset, StageSpec};
            use nimbus_runtime::quickstart::{ADD, SUM};

            let data: Dataset<VecF64> = ctx.define_dataset("data", PARTITIONS)?;
            let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
            let mut totals = Vec::with_capacity(iterations as usize);
            for i in 0..iterations {
                ctx.block("inner", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("add", ADD)
                            .write(&data)
                            .params(TaskParams::from_scalar(1.0)),
                    )?;
                    let mut sum = StageSpec::new("sum", SUM).partitions(1);
                    for p in 0..data.partitions {
                        sum = sum.read_partition(&data, p);
                    }
                    ctx.submit_stage(sum.write_partition(&total, 0))?;
                    Ok(())
                })?;
                if matches!(point, ChurnPoint::BeforeFetch(_)) && i == point.iteration() {
                    if let Some(churn) = churn.take() {
                        churn(cluster);
                    }
                }
                totals.push(ctx.fetch(&total, 0)?);
                if i == point.iteration() {
                    if let Some(churn) = churn.take() {
                        churn(cluster);
                    }
                }
            }
            Ok(totals)
        })
        .expect("churned job completes")
}

/// Kills a worker, waits for the controller to observe the death and open
/// its rejoin grace window, then brings the worker back under the same
/// identity.
fn kill_then_rejoin(worker: WorkerId) -> impl FnOnce(&mut Cluster) + Send + 'static {
    move |cluster: &mut Cluster| {
        cluster.kill_worker(worker);
        std::thread::sleep(Duration::from_millis(500));
        cluster.rejoin_worker(worker);
    }
}

/// Acceptance: a worker killed mid-job rejoins over TCP loopback and the
/// job's output is byte-identical to an undisturbed run, with zero template
/// re-recordings — the block was recorded exactly once, before the failure,
/// and every post-rejoin adjustment happened through installed-template
/// reinstalls, edits, and patches.
#[test]
fn killed_worker_rejoins_and_output_is_byte_identical() {
    let report = with_timeout("kill-rejoin", Duration::from_secs(120), || {
        run_churned(
            ClusterConfig::new(2)
                .with_tcp_transport()
                .with_checkpoint_every(3)
                .with_rejoin_grace(Duration::from_secs(30)),
            20,
            ChurnPoint::AfterFetch(10),
            kill_then_rejoin(WorkerId(0)),
        )
    });
    assert_eq!(
        report.output,
        closed_form(20),
        "churned output diverges from the undisturbed run"
    );
    // Zero re-recordings: the one pre-failure recording served the whole
    // job; the rejoin was handled with template edits/reinstalls only.
    assert_eq!(
        report.controller.controller_templates_installed, 1,
        "rejoin must not re-record templates"
    );
    assert_eq!(report.controller.failures_handled, 1);
    assert_eq!(report.controller.rejoins_handled, 1);
    // With checkpoints every 3 instantiations, the failure after iteration
    // 10 rolled back to an earlier checkpoint; the controller replayed the
    // gap itself — no driver involvement.
    assert!(
        report.controller.instantiations_replayed >= 1,
        "expected the controller to replay the post-checkpoint gap, got {}",
        report.controller.instantiations_replayed
    );
    assert!(report.controller.checkpoints_committed >= 3);
}

/// The same churn with the iteration's commands still in flight (the driver
/// blocked in the fetch right after): the interrupted fetch must resume
/// against recovered-and-replayed state and produce the exact value.
#[test]
fn kill_with_commands_in_flight_is_still_byte_identical() {
    let report = with_timeout("kill-mid-flight", Duration::from_secs(120), || {
        run_churned(
            ClusterConfig::new(2)
                .with_tcp_transport()
                .with_checkpoint_every(1)
                .with_spin_wait(Duration::from_millis(2))
                .with_rejoin_grace(Duration::from_secs(30)),
            14,
            ChurnPoint::BeforeFetch(6),
            kill_then_rejoin(WorkerId(1)),
        )
    });
    assert_eq!(report.output, closed_form(14));
    assert_eq!(report.controller.controller_templates_installed, 1);
    assert_eq!(report.controller.failures_handled, 1);
    assert_eq!(report.controller.rejoins_handled, 1);
}

/// Losing the *last* worker with a rejoin grace configured, and having the
/// grace expire without a return, must surface a clean driver error — not
/// panic the controller on a workerless recovery or hang the job.
#[test]
fn last_worker_lost_and_never_rejoining_errors_cleanly() {
    let result = with_timeout("last-worker-lost", Duration::from_secs(60), || {
        let cluster = Cluster::start(
            ClusterConfig::new(1)
                .with_tcp_transport()
                .with_checkpoint_every(1)
                .with_rejoin_grace(Duration::from_millis(500)),
            quickstart_setup(),
        );
        cluster.run_driver_with_cluster(|ctx, cluster| {
            use nimbus_runtime::quickstart::quickstart_driver;
            ctx.set_reply_timeout(Duration::from_secs(20));
            quickstart_driver(ctx, 3)?;
            cluster.kill_worker(WorkerId(0));
            // The grace window expires with nobody left to recover onto.
            quickstart_driver(ctx, 3)
        })
    });
    let message = match result {
        Ok(_) => panic!("a workerless job must fail"),
        Err(err) => err.to_string(),
    };
    assert!(
        message.contains("disconnected") || message.contains("no workers"),
        "expected a clean no-workers error, got: {message}"
    );
}

/// Elastic growth: a brand-new worker joins a running job and is served
/// through template edits — it executes its migrated share of tasks, the
/// outputs stay byte-identical, and nothing is re-recorded.
#[test]
fn added_worker_joins_via_edits_and_executes_tasks() {
    let report = with_timeout("elastic-add", Duration::from_secs(120), || {
        run_churned(
            ClusterConfig::new(2).with_tcp_transport(),
            16,
            ChurnPoint::AfterFetch(5),
            |cluster: &mut Cluster| {
                cluster.add_worker();
            },
        )
    });
    assert_eq!(report.output, closed_form(16));
    assert_eq!(
        report.controller.controller_templates_installed, 1,
        "elastic join must not re-record templates"
    );
    assert_eq!(report.controller.rejoins_handled, 1);
    assert!(
        report.controller.edits_applied > 0,
        "the joining worker's share must arrive as template edits"
    );
    // All three workers (the two originals and the late joiner) did real
    // work.
    assert_eq!(report.workers.len(), 3);
    for (i, w) in report.workers.iter().enumerate() {
        assert!(w.tasks_executed > 0, "worker #{i} executed no tasks");
    }
}

/// Satellite of the multi-tenant PR (ROADMAP open item): TWO workers dying
/// inside one grace window are both readmitted in place. `awaiting_rejoin`
/// is a set now, not a single slot — the first death opens the recovery,
/// the second folds into it, and completion waits for both returns. Output
/// stays byte-identical with zero template re-recordings.
#[test]
fn two_workers_killed_in_one_window_both_rejoin() {
    let report = with_timeout("double-kill", Duration::from_secs(120), || {
        run_churned(
            ClusterConfig::new(3)
                .with_tcp_transport()
                .with_checkpoint_every(3)
                .with_rejoin_grace(Duration::from_secs(30)),
            20,
            ChurnPoint::AfterFetch(10),
            |cluster: &mut Cluster| {
                cluster.kill_worker(WorkerId(0));
                cluster.kill_worker(WorkerId(1));
                std::thread::sleep(Duration::from_millis(500));
                cluster.rejoin_worker(WorkerId(0));
                cluster.rejoin_worker(WorkerId(1));
            },
        )
    });
    assert_eq!(
        report.output,
        closed_form(20),
        "double-churned output diverges from the undisturbed run"
    );
    assert_eq!(
        report.controller.controller_templates_installed, 1,
        "simultaneous rejoins must not re-record templates"
    );
    // One recovery absorbed both deaths; each return was a readmission.
    assert_eq!(report.controller.failures_handled, 1);
    assert_eq!(report.controller.rejoins_handled, 2);
    assert!(report.controller.instantiations_replayed >= 1);
}

/// Satellite of the multi-tenant PR (ROADMAP open item): the kill/rejoin
/// churn suite now runs on the in-process transport too. The fabric's
/// injectable `Network::disconnect` delivers the same `PeerDisconnected`
/// notice a dropped TCP socket would, so the whole rejoin handshake —
/// grace window, template reinstalls, checkpoint reload, replay — is
/// transport-independent.
#[test]
fn killed_worker_rejoins_in_process_and_output_is_byte_identical() {
    let report = with_timeout("kill-rejoin-inproc", Duration::from_secs(120), || {
        run_churned(
            ClusterConfig::new(2)
                .with_checkpoint_every(3)
                .with_rejoin_grace(Duration::from_secs(30)),
            20,
            ChurnPoint::AfterFetch(10),
            kill_then_rejoin(WorkerId(0)),
        )
    });
    assert_eq!(report.output, closed_form(20));
    assert_eq!(report.controller.controller_templates_installed, 1);
    assert_eq!(report.controller.failures_handled, 1);
    assert_eq!(report.controller.rejoins_handled, 1);
    assert!(report.controller.instantiations_replayed >= 1);
}

/// Satellite of the multi-tenant PR: the controller's replay log now covers
/// raw `SubmitTask` traffic, not only `InstantiateTemplate`. A job running
/// with templates disabled (pure per-task scheduling) loses a worker after
/// its last checkpoint; the controller restores the checkpoint and replays
/// the logged submit stream itself, so the un-templated recovery is
/// byte-exact — previously this window fell back to lossy recovery
/// (`replay_valid = false`) and the post-checkpoint iterations were
/// silently lost.
#[test]
fn raw_submit_stream_recovers_byte_exact() {
    use nimbus_core::appdata::{Scalar, VecF64};
    use nimbus_core::TaskParams;
    use nimbus_driver::{Dataset, StageSpec};
    use nimbus_runtime::quickstart::{ADD, SUM};

    let report = with_timeout("raw-submit-replay", Duration::from_secs(120), || {
        let cluster = Cluster::start(
            ClusterConfig::new(2)
                .without_templates()
                .with_tcp_transport()
                .with_rejoin_grace(Duration::from_secs(30)),
            quickstart_setup(),
        );
        cluster
            .run_driver_with_cluster(|ctx, cluster| {
                let data: Dataset<VecF64> = ctx.define_dataset("data", PARTITIONS)?;
                let total: Dataset<Scalar> = ctx.define_dataset("total", 1)?;
                let mut totals = Vec::new();
                for i in 0..14u32 {
                    // No blocks: every stage goes out as raw SubmitTask
                    // messages (the un-templated stream).
                    ctx.submit_stage(
                        StageSpec::new("add", ADD)
                            .write(&data)
                            .params(TaskParams::from_scalar(1.0)),
                    )?;
                    let mut sum = StageSpec::new("sum", SUM).partitions(1);
                    for p in 0..data.partitions {
                        sum = sum.read_partition(&data, p);
                    }
                    ctx.submit_stage(sum.write_partition(&total, 0))?;
                    totals.push(ctx.fetch(&total, 0)?);
                    if i == 5 {
                        // The only checkpoint: iterations 6.. exist solely
                        // in the replay log.
                        ctx.checkpoint(u64::from(i))?;
                    }
                    if i == 8 {
                        cluster.kill_worker(WorkerId(0));
                        std::thread::sleep(Duration::from_millis(500));
                        cluster.rejoin_worker(WorkerId(0));
                    }
                }
                Ok(totals)
            })
            .expect("un-templated churned job completes")
    });
    assert_eq!(
        report.output,
        closed_form(14),
        "raw-submit recovery lost post-checkpoint iterations"
    );
    // Purely per-task: nothing was ever recorded, and the recovery replayed
    // the logged submit stream controller-side.
    assert_eq!(report.controller.controller_templates_installed, 0);
    assert_eq!(report.controller.failures_handled, 1);
    assert!(
        report.controller.instantiations_replayed >= 1,
        "expected the submit window to replay, got {}",
        report.controller.instantiations_replayed
    );
}
