//! Shared harness for the integration suites.

use std::time::Duration;

/// Hard per-test timeout: the body runs in its own thread; if it has not
/// finished in `limit`, the test fails immediately instead of hanging the
/// suite (and CI) on a wedged recovery.
pub fn with_timeout<T: Send + 'static>(
    name: &str,
    limit: Duration,
    body: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let thread = std::thread::Builder::new()
        .name(format!("watchdog-{name}"))
        .spawn(move || {
            let _ = tx.send(body());
        })
        .expect("spawn test body");
    match rx.recv_timeout(limit) {
        Ok(value) => {
            thread.join().expect("test body panicked");
            value
        }
        Err(_) => panic!("{name} did not finish within {limit:?} (wedged recovery?)"),
    }
}
