//! Checkpoint-based fault recovery (Section 4.4): the driver checkpoints the
//! job, a worker fails abruptly, and the controller halts the survivors,
//! reloads the checkpoint, and resumes.
//!
//! Run with: `cargo run --example fault_recovery`

use nimbus::prelude::*;

const BUMP: FunctionId = FunctionId(1);

fn main() {
    let setup = AppSetup::new()
        .function(BUMP, "bump", |ctx| {
            for x in ctx.write::<VecF64>(0)?.values.iter_mut() {
                *x += 1.0;
            }
            Ok(())
        })
        .object(LogicalObjectId(1), |_| VecF64::zeros(4));

    let cluster = Cluster::start(ClusterConfig::new(3), setup);
    let report = cluster
        .run_driver(|ctx| {
            let data = ctx.define_dataset::<VecF64>("data", 6)?;
            let step = |ctx: &mut DriverContext| {
                ctx.block("step", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("bump", BUMP)
                            .write(&data)
                            .params(TaskParams::empty()),
                    )
                })
            };
            // Run five iterations, checkpoint, then run three more.
            for _ in 0..5 {
                step(ctx)?;
            }
            ctx.checkpoint(5)?;
            println!("checkpoint committed at iteration 5");
            for _ in 0..3 {
                step(ctx)?;
            }
            println!("value before failure: {}", ctx.fetch(&data, 0)?);

            // Worker 2 fails abruptly; the controller restores the checkpoint.
            let marker = ctx.fail_worker(WorkerId(2))?;
            println!("recovered from checkpoint taken at iteration {marker}");
            let restored = ctx.fetch(&data, 0)?;
            println!("value after recovery: {restored}");

            // The driver resumes from the checkpoint marker.
            for _ in marker..8 {
                step(ctx)?;
            }
            ctx.fetch(&data, 0)
        })
        .expect("job completes");
    println!("final value (8 effective iterations): {}", report.output);
    println!(
        "checkpoints committed: {}, failures handled: {}",
        report.controller.checkpoints_committed, report.controller.failures_handled
    );
}
