//! K-means clustering: the paper's second machine-learning benchmark.
//!
//! Run with: `cargo run --example kmeans --release`

use nimbus::apps::kmeans;
use nimbus::prelude::*;

fn main() {
    let config = kmeans::KMeansConfig {
        partitions: 16,
        points_per_partition: 512,
        dim: 4,
        k: 5,
        max_iterations: 12,
        ..Default::default()
    };
    let mut setup = AppSetup::new();
    kmeans::register(&mut setup, &config);
    let cluster = Cluster::start(ClusterConfig::new(4), setup);
    let report = cluster
        .run_driver(|ctx| kmeans::run(ctx, &config))
        .expect("clustering completes");
    println!("objective history: {:?}", report.output.objective_history);
    println!(
        "converged after {} iterations; objective {:.2}",
        report.output.iterations, report.output.final_objective
    );
    println!(
        "tasks via templates: {}, tasks scheduled individually: {}",
        report.controller.tasks_from_templates, report.controller.tasks_scheduled_directly
    );
}
