//! Logistic regression with the nested-loop structure of Figure 3 of the
//! paper: an inner gradient loop and an outer loss-estimation loop, both
//! cached as execution templates.
//!
//! Run with: `cargo run --example logistic_regression --release`

use nimbus::apps::logistic_regression as lr;
use nimbus::prelude::*;

fn main() {
    let config = lr::LogisticRegressionConfig {
        partitions: 16,
        points_per_partition: 512,
        dim: 16,
        max_inner_iterations: 8,
        max_outer_iterations: 4,
        ..Default::default()
    };
    let mut setup = AppSetup::new();
    lr::register(&mut setup, &config);
    let cluster = Cluster::start(ClusterConfig::new(4), setup);
    let report = cluster
        .run_driver(|ctx| lr::run(ctx, &config))
        .expect("training completes");
    let result = report.output;
    println!("loss history: {:?}", result.loss_history);
    println!(
        "{} outer iterations, {} gradient iterations, final loss {:.4}",
        result.outer_iterations, result.inner_iterations, result.final_loss
    );
    println!(
        "templates: {} installed, {} instantiations, {} auto-validated, {} patched",
        report.controller.controller_templates_installed,
        report.controller.controller_template_instantiations,
        report.controller.auto_validations,
        report.controller.patches_applied
    );
}
