//! Multi-job quickstart: one controller, one worker pool, many concurrent
//! driver sessions.
//!
//! Each driver opens its own [`Session`] with `Cluster::connect_driver` —
//! the controller assigns it a `JobId` through the `OpenJob`/`JobAccepted`
//! handshake — and from then on everything the driver does (datasets,
//! stages, templates, fetches, checkpoints) lives in that job's namespace,
//! fully isolated from the other sessions sharing the cluster. This is the
//! regime where caching control-plane decisions pays off most: the
//! controller serves every job's instantiation stream from its templates
//! while each driver's round-trip stalls are filled with the others' work.
//!
//! Run with: `cargo run --release --example multijob`

use nimbus::prelude::*;
use nimbus_runtime::quickstart::{quickstart_driver, quickstart_setup, PARTITIONS, PARTITION_LEN};

const JOBS: usize = 4;
const ITERATIONS: u32 = 5;

fn main() {
    let mut cluster = Cluster::start(ClusterConfig::new(2), quickstart_setup());

    // Open one independent session per driver and run them concurrently.
    let mut handles = Vec::new();
    for d in 0..JOBS {
        let mut session: Session = cluster.connect_driver().expect("open session");
        handles.push(std::thread::spawn(move || {
            let job = session.job();
            let totals = quickstart_driver(&mut session, ITERATIONS).expect("driver runs");
            session.close().expect("close session");
            (d, job, totals)
        }));
    }

    let expected: Vec<f64> = (1..=ITERATIONS)
        .map(|i| (i as usize * PARTITIONS as usize * PARTITION_LEN) as f64)
        .collect();
    for handle in handles {
        let (d, job, totals) = handle.join().expect("driver thread");
        assert_eq!(totals, expected, "driver {d} (job {job}) diverged");
        println!("driver {d} ran as job {job}: totals {totals:?}");
    }

    let report = cluster.shutdown_and_join().expect("cluster shuts down");
    println!(
        "controller served {} jobs: {} templates recorded, {} instantiations, {} tasks from templates",
        JOBS,
        report.controller.controller_templates_installed,
        report.controller.controller_template_instantiations,
        report.controller.tasks_from_templates,
    );
    assert_eq!(
        report.controller.controller_templates_installed, JOBS as u64,
        "each job records its block exactly once"
    );
}
