//! Dynamic scheduling with template edits: the controller migrates tasks of a
//! cached block between workers without re-installing the template, and the
//! job keeps producing the same results (Figure 10's mechanism).
//!
//! Run with: `cargo run --example dynamic_migration`

use nimbus::apps::logistic_regression as lr;
use nimbus::prelude::*;

fn main() {
    let config = lr::LogisticRegressionConfig {
        partitions: 8,
        points_per_partition: 128,
        dim: 8,
        max_inner_iterations: 12,
        gradient_threshold: 0.0, // run all iterations
        max_outer_iterations: 1,
        ..Default::default()
    };
    let mut setup = AppSetup::new();
    lr::register(&mut setup, &config);
    let cluster = Cluster::start(ClusterConfig::new(4), setup);
    let report = cluster
        .run_driver(|ctx| {
            let data = lr::define_datasets(ctx, &config)?;
            let mut norms = Vec::new();
            for iteration in 0..config.max_inner_iterations {
                // Every 4th iteration, ask the controller to migrate two of
                // the block's tasks to different workers before the next
                // instantiation. The change is expressed as template edits.
                if iteration > 0 && iteration % 4 == 0 {
                    ctx.migrate_tasks("lr_inner", 2)?;
                    eprintln!("iteration {iteration}: requested migration of 2 tasks");
                }
                lr::submit_inner_block(ctx, &data, &config)?;
                let norm = ctx.fetch(&data.gradient_norm, 0)?;
                eprintln!("iteration {iteration}: gradient norm {norm:.4}");
                norms.push(norm);
            }
            Ok(norms)
        })
        .expect("job completes");
    println!("gradient norms: {:?}", report.output);
    println!(
        "edits applied: {}, template instantiations: {}, full validations: {}, patches: {}",
        report.controller.edits_applied,
        report.controller.worker_template_instantiations,
        report.controller.full_validations,
        report.controller.patches_applied
    );
    assert!(
        report.output.last().unwrap() < report.output.first().unwrap(),
        "optimization keeps making progress despite migrations"
    );
    assert!(
        report.controller.edits_applied > 0,
        "migrations were expressed as edits"
    );
}
