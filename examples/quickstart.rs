//! Quickstart: define typed datasets, register task functions, run an
//! iterative job whose inner loop is cached as an execution template.
//!
//! Run with: `cargo run --example quickstart`

use nimbus::prelude::*;

const ADD: FunctionId = FunctionId(1);
const SUM: FunctionId = FunctionId(2);

const DATA: LogicalObjectId = LogicalObjectId(1);
const TOTAL: LogicalObjectId = LogicalObjectId(2);

fn main() {
    // 1. Register the application: task functions plus the initial contents
    //    of each dataset. `object::<T>` makes the partition type explicit —
    //    the same `T` the driver asserts below when defining the dataset.
    let setup = AppSetup::new()
        .function(ADD, "add", |ctx| {
            let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
            for x in ctx.write::<VecF64>(0)?.values.iter_mut() {
                *x += delta;
            }
            Ok(())
        })
        .function(SUM, "sum", |ctx| {
            let mut total = 0.0;
            for i in 0..ctx.read_count() {
                total += ctx.read::<VecF64>(i)?.values.iter().sum::<f64>();
            }
            ctx.write::<Scalar>(0)?.value = total;
            Ok(())
        })
        .object(DATA, |_| VecF64::zeros(8))
        .object(TOTAL, |_| Scalar::new(0.0));

    // 2. Start an in-process cluster: one controller, four workers.
    let cluster = Cluster::start(ClusterConfig::new(4), setup);

    // 3. The driver program: an iterative loop whose body is one basic block.
    //    The first iteration records the block as an execution template; every
    //    later iteration costs a single instantiation message per worker.
    let report = cluster
        .run_driver(|ctx| {
            let data = ctx.define_dataset::<VecF64>("data", 8)?;
            let total = ctx.define_dataset::<Scalar>("total", 1)?;
            for i in 0..10u32 {
                ctx.block("inner", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("add", ADD)
                            .write(&data)
                            .params(TaskParams::from_scalar(1.0)),
                    )?;
                    let mut sum = StageSpec::new("sum", SUM).partitions(1);
                    for p in 0..data.partitions {
                        sum = sum.read_partition(&data, p);
                    }
                    ctx.submit_stage(sum.write_partition(&total, 0))?;
                    Ok(())
                })?;
                // `fetch` is typed: it only compiles for datasets whose
                // partitions have a scalar projection (here `Scalar`).
                let value = ctx.fetch(&total, 0)?;
                println!("iteration {i}: total = {value}");
                // This job is also packaged as `nimbus_runtime::quickstart`
                // (used by the TCP/multi-process integration tests); both
                // copies are pinned to the same closed form so they cannot
                // silently diverge.
                assert_eq!(value, ((i + 1) * 8 * 8) as f64);
            }
            Ok(())
        })
        .expect("job completes");

    println!(
        "\ntemplates installed: {}, template instantiations: {}, tasks via templates: {}, \
         tasks scheduled individually: {}",
        report.controller.controller_templates_installed,
        report.controller.controller_template_instantiations,
        report.controller.tasks_from_templates,
        report.controller.tasks_scheduled_directly
    );
    println!(
        "control messages: {}, control bytes: {}, data bytes: {}",
        report.network.messages, report.network.control_bytes, report.network.data_bytes
    );
    assert!(report.controller.controller_templates_installed > 0);
    assert!(report.controller.controller_template_instantiations > 0);
}
