//! Quickstart: define datasets, register task functions, run an iterative job
//! whose inner loop is cached as an execution template.
//!
//! Run with: `cargo run --example quickstart`

use nimbus::core::appdata::{Scalar, VecF64};
use nimbus::core::{FunctionId, LogicalObjectId, TaskParams};
use nimbus::{AppSetup, Cluster, ClusterConfig, StageSpec};

const ADD: FunctionId = FunctionId(1);
const SUM: FunctionId = FunctionId(2);

fn main() {
    // 1. Register the application: task functions plus initial partition contents.
    let mut setup = AppSetup::new();
    setup.functions.register(ADD, "add", |ctx| {
        let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
        for x in ctx.write::<VecF64>(0)?.values.iter_mut() {
            *x += delta;
        }
        Ok(())
    });
    setup.functions.register(SUM, "sum", |ctx| {
        let mut total = 0.0;
        for i in 0..ctx.read_count() {
            total += ctx.read::<VecF64>(i)?.values.iter().sum::<f64>();
        }
        ctx.write::<Scalar>(0)?.value = total;
        Ok(())
    });
    setup
        .factories
        .register(LogicalObjectId(1), Box::new(|_| Box::new(VecF64::zeros(8))));
    setup
        .factories
        .register(LogicalObjectId(2), Box::new(|_| Box::new(Scalar::new(0.0))));

    // 2. Start an in-process cluster: one controller, four workers.
    let cluster = Cluster::start(ClusterConfig::new(4), setup);

    // 3. The driver program: an iterative loop whose body is one basic block.
    //    The first iteration records the block as an execution template; every
    //    later iteration costs a single instantiation message per worker.
    let report = cluster
        .run_driver(|ctx| {
            let data = ctx.define_dataset("data", 8)?;
            let total = ctx.define_dataset("total", 1)?;
            for i in 0..10u32 {
                ctx.block("inner", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("add", ADD)
                            .write(&data)
                            .params(TaskParams::from_scalar(1.0)),
                    )?;
                    let mut sum = StageSpec::new("sum", SUM).partitions(1);
                    for p in 0..data.partitions {
                        sum = sum.read_partition(&data, p);
                    }
                    ctx.submit_stage(sum.write_partition(&total, 0))?;
                    Ok(())
                })?;
                let value = ctx.fetch_scalar(&total, 0)?;
                println!("iteration {i}: total = {value}");
            }
            Ok(())
        })
        .expect("job completes");

    println!(
        "\ntemplates installed: {}, template instantiations: {}, tasks via templates: {}, \
         tasks scheduled individually: {}",
        report.controller.controller_templates_installed,
        report.controller.controller_template_instantiations,
        report.controller.tasks_from_templates,
        report.controller.tasks_scheduled_directly
    );
    println!(
        "control messages: {}, control bytes: {}, data bytes: {}",
        report.network.messages, report.network.control_bytes, report.network.data_bytes
    );
}
