//! The water-simulation proxy: a triply nested, data-dependent loop (frames,
//! adaptive CFL sub-steps, iterative pressure projection) with 21 stages —
//! the control-flow structure static dataflow systems cannot express
//! (Section 5.5 of the paper).
//!
//! Run with: `cargo run --example water_simulation --release`

use nimbus::apps::water;
use nimbus::prelude::*;

fn main() {
    let config = water::WaterConfig {
        nx: 24,
        rows_per_slab: 8,
        slabs: 4,
        frames: 3,
        max_pressure_iterations: 10,
        max_substeps_per_frame: 4,
        ..Default::default()
    };
    let mut setup = AppSetup::new();
    water::register(&mut setup, &config);
    let cluster = Cluster::start(ClusterConfig::new(4), setup);
    let report = cluster
        .run_driver(|ctx| water::run(ctx, &config))
        .expect("simulation completes");
    let result = report.output;
    println!("water volume per frame: {:?}", result.volume_per_frame);
    println!(
        "{} frames, {} adaptive sub-steps, {} pressure iterations",
        result.frames, result.substeps, result.pressure_iterations
    );
    println!(
        "basic blocks cached as templates: {}, instantiations: {}, auto-validated: {}",
        report.controller.controller_templates_installed,
        report.controller.controller_template_instantiations,
        report.controller.auto_validations
    );
}
