//! Cross-crate integration tests: end-to-end jobs on the in-process cluster
//! exercising execution templates, dynamic scheduling, and fault recovery —
//! written against the `nimbus::prelude` facade.

use nimbus::prelude::*;

const BUMP: FunctionId = FunctionId(1);
const SUM: FunctionId = FunctionId(2);

/// The typed datasets every test job uses.
struct Job {
    data: Dataset<VecF64>,
    total: Dataset<Scalar>,
}

fn setup(partition_len: usize) -> AppSetup {
    AppSetup::new()
        .function(BUMP, "bump", |ctx| {
            let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
            for x in ctx.write::<VecF64>(0)?.values.iter_mut() {
                *x += delta;
            }
            Ok(())
        })
        .function(SUM, "sum", |ctx| {
            let mut total = 0.0;
            for i in 0..ctx.read_count() {
                total += ctx.read::<VecF64>(i)?.values.iter().sum::<f64>();
            }
            ctx.write::<Scalar>(0)?.value = total;
            Ok(())
        })
        .object(LogicalObjectId(1), move |_| VecF64::zeros(partition_len))
        .object(LogicalObjectId(2), |_| Scalar::new(0.0))
}

fn define_job(ctx: &mut DriverContext, partitions: u32) -> DriverResult<Job> {
    Ok(Job {
        data: ctx.define_dataset("data", partitions)?,
        total: ctx.define_dataset("total", 1)?,
    })
}

fn bump_and_sum(ctx: &mut DriverContext, job: &Job, delta: f64) -> DriverResult<()> {
    ctx.block("step", |ctx| {
        ctx.submit_stage(
            StageSpec::new("bump", BUMP)
                .write(&job.data)
                .params(TaskParams::from_scalar(delta)),
        )?;
        let mut sum = StageSpec::new("sum", SUM).partitions(1);
        for p in 0..job.data.partitions {
            sum = sum.read_partition(&job.data, p);
        }
        ctx.submit_stage(sum.write_partition(&job.total, 0))?;
        Ok(())
    })
}

#[test]
fn templates_survive_allocation_changes_and_keep_results_correct() {
    let cluster = Cluster::start(ClusterConfig::new(4), setup(2));
    let report = cluster
        .run_driver(|ctx| {
            let job = define_job(ctx, 8)?;
            let mut expected = 0.0;
            for i in 0..12u32 {
                // Shrink the allocation mid-run and later restore it, like the
                // cluster-manager events of Figure 9.
                if i == 4 {
                    ctx.set_worker_allocation(vec![WorkerId(0), WorkerId(1)])?;
                }
                if i == 8 {
                    ctx.set_worker_allocation((0..4).map(WorkerId).collect::<Vec<_>>())?;
                }
                bump_and_sum(ctx, &job, 1.0)?;
                expected += 8.0 * 2.0;
                let got = ctx.fetch(&job.total, 0)?;
                assert_eq!(got, expected, "iteration {i}");
            }
            Ok(())
        })
        .expect("job completes");
    // The block is re-recorded when the allocation changes, then re-used.
    assert!(report.controller.controller_templates_installed >= 1);
    assert!(report.controller.worker_template_groups_generated >= 2);
    assert!(report.controller.tasks_from_templates > 0);
    assert!(report.controller.auto_validations >= 6);
}

#[test]
fn checkpoint_recovery_restores_exact_state() {
    let cluster = Cluster::start(ClusterConfig::new(3), setup(4));
    let report = cluster
        .run_driver(|ctx| {
            let job = define_job(ctx, 6)?;
            for _ in 0..4 {
                bump_and_sum(ctx, &job, 1.0)?;
            }
            ctx.checkpoint(4)?;
            for _ in 0..3 {
                bump_and_sum(ctx, &job, 1.0)?;
            }
            assert_eq!(ctx.fetch(&job.total, 0)?, 7.0 * 24.0);
            let marker = ctx.fail_worker(WorkerId(2))?;
            assert_eq!(marker, 4);
            // State is back at the checkpoint; re-run the lost iterations.
            for _ in marker..7 {
                bump_and_sum(ctx, &job, 1.0)?;
            }
            ctx.fetch(&job.total, 0)
        })
        .expect("job completes");
    assert_eq!(report.output, 7.0 * 24.0);
    assert_eq!(report.controller.checkpoints_committed, 1);
    assert_eq!(report.controller.failures_handled, 1);
}

#[test]
fn migrations_via_edits_keep_results_correct() {
    let cluster = Cluster::start(ClusterConfig::new(3), setup(2));
    let report = cluster
        .run_driver(|ctx| {
            let job = define_job(ctx, 6)?;
            let mut expected = 0.0;
            for i in 0..8u32 {
                if i == 3 {
                    ctx.migrate_tasks("step", 2)?;
                }
                bump_and_sum(ctx, &job, 2.0)?;
                expected += 6.0 * 2.0 * 2.0;
                assert_eq!(ctx.fetch(&job.total, 0)?, expected, "iteration {i}");
            }
            Ok(())
        })
        .expect("job completes");
    assert!(report.controller.edits_applied > 0);
    assert!(report.controller.patches_applied > 0);
}

#[test]
fn failed_recording_aborts_and_the_block_can_be_rerecorded() {
    let cluster = Cluster::start(ClusterConfig::new(2), setup(2));
    let report = cluster
        .run_driver(|ctx| {
            let job = define_job(ctx, 4)?;
            // The block body fails during its first (recording) execution.
            let err = ctx
                .block("step", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("bump", BUMP)
                            .write(&job.data)
                            .params(TaskParams::from_scalar(1.0)),
                    )?;
                    Err(DriverError::Misuse("body failed".to_string()))
                })
                .expect_err("body error must surface");
            assert!(err.to_string().contains("body failed"));
            // The controller's recording state was aborted: the same block
            // name records cleanly and replays afterwards.
            for _ in 0..2 {
                bump_and_sum(ctx, &job, 1.0)?;
            }
            ctx.fetch(&job.total, 0)
        })
        .expect("job completes");
    // One bump ran inside the failed body (its task was submitted before the
    // error), then two full iterations: 3 bumps of +1 over 8 elements.
    assert_eq!(report.output, 3.0 * 8.0);
    assert_eq!(report.controller.controller_templates_installed, 1);
    assert_eq!(report.controller.controller_template_instantiations, 1);
}

#[test]
fn replayed_block_with_mismatched_shape_is_rejected() {
    let cluster = Cluster::start(ClusterConfig::new(2), setup(2));
    let report = cluster
        .run_driver(|ctx| {
            let job = define_job(ctx, 4)?;
            bump_and_sum(ctx, &job, 1.0)?;
            // Replay the same block name with one stage fewer: the driver
            // must reject the mismatch instead of sending a misaligned
            // instantiation.
            let err = ctx
                .block("step", |ctx| {
                    ctx.submit_stage(
                        StageSpec::new("bump", BUMP)
                            .write(&job.data)
                            .params(TaskParams::from_scalar(1.0)),
                    )
                })
                .expect_err("shape mismatch must be rejected");
            assert!(matches!(err, DriverError::Misuse(_)), "got {err:?}");
            // The cluster stays usable: a correctly-shaped replay still runs.
            bump_and_sum(ctx, &job, 1.0)?;
            ctx.fetch(&job.total, 0)
        })
        .expect("job completes");
    assert_eq!(report.output, 2.0 * 8.0);
}
