//! Cross-crate integration tests: end-to-end jobs on the in-process cluster
//! exercising execution templates, dynamic scheduling, and fault recovery.

use nimbus::core::appdata::{Scalar, VecF64};
use nimbus::core::{FunctionId, LogicalObjectId, TaskParams, WorkerId};
use nimbus::{AppSetup, Cluster, ClusterConfig, DriverContext, DriverResult, StageSpec};

const BUMP: FunctionId = FunctionId(1);
const SUM: FunctionId = FunctionId(2);

fn setup(partition_len: usize) -> AppSetup {
    let mut setup = AppSetup::new();
    setup.functions.register(BUMP, "bump", |ctx| {
        let delta = ctx.params().as_scalar().map_err(|e| e.to_string())?;
        for x in ctx.write::<VecF64>(0)?.values.iter_mut() {
            *x += delta;
        }
        Ok(())
    });
    setup.functions.register(SUM, "sum", |ctx| {
        let mut total = 0.0;
        for i in 0..ctx.read_count() {
            total += ctx.read::<VecF64>(i)?.values.iter().sum::<f64>();
        }
        ctx.write::<Scalar>(0)?.value = total;
        Ok(())
    });
    setup.factories.register(
        LogicalObjectId(1),
        Box::new(move |_| Box::new(VecF64::zeros(partition_len))),
    );
    setup
        .factories
        .register(LogicalObjectId(2), Box::new(|_| Box::new(Scalar::new(0.0))));
    setup
}

fn bump_and_sum(
    ctx: &mut DriverContext,
    data: &nimbus::DatasetHandle,
    total: &nimbus::DatasetHandle,
    delta: f64,
) -> DriverResult<()> {
    ctx.block("step", |ctx| {
        ctx.submit_stage(
            StageSpec::new("bump", BUMP)
                .write(data)
                .params(TaskParams::from_scalar(delta)),
        )?;
        let mut sum = StageSpec::new("sum", SUM).partitions(1);
        for p in 0..data.partitions {
            sum = sum.read_partition(data, p);
        }
        ctx.submit_stage(sum.write_partition(total, 0))?;
        Ok(())
    })
}

#[test]
fn templates_survive_allocation_changes_and_keep_results_correct() {
    let cluster = Cluster::start(ClusterConfig::new(4), setup(2));
    let report = cluster
        .run_driver(|ctx| {
            let data = ctx.define_dataset("data", 8)?;
            let total = ctx.define_dataset("total", 1)?;
            let mut expected = 0.0;
            for i in 0..12u32 {
                // Shrink the allocation mid-run and later restore it, like the
                // cluster-manager events of Figure 9.
                if i == 4 {
                    ctx.set_worker_allocation(vec![WorkerId(0), WorkerId(1)])?;
                }
                if i == 8 {
                    ctx.set_worker_allocation(
                        (0..4).map(WorkerId).collect::<Vec<_>>(),
                    )?;
                }
                bump_and_sum(ctx, &data, &total, 1.0)?;
                expected += 8.0 * 2.0;
                let got = ctx.fetch_scalar(&total, 0)?;
                assert_eq!(got, expected, "iteration {i}");
            }
            Ok(())
        })
        .expect("job completes");
    // The block is re-recorded when the allocation changes, then re-used.
    assert!(report.controller.controller_templates_installed >= 1);
    assert!(report.controller.worker_template_groups_generated >= 2);
    assert!(report.controller.tasks_from_templates > 0);
    assert!(report.controller.auto_validations >= 6);
}

#[test]
fn checkpoint_recovery_restores_exact_state() {
    let cluster = Cluster::start(ClusterConfig::new(3), setup(4));
    let report = cluster
        .run_driver(|ctx| {
            let data = ctx.define_dataset("data", 6)?;
            let total = ctx.define_dataset("total", 1)?;
            for _ in 0..4 {
                bump_and_sum(ctx, &data, &total, 1.0)?;
            }
            ctx.checkpoint(4)?;
            for _ in 0..3 {
                bump_and_sum(ctx, &data, &total, 1.0)?;
            }
            assert_eq!(ctx.fetch_scalar(&total, 0)?, 7.0 * 24.0);
            let marker = ctx.fail_worker(WorkerId(2))?;
            assert_eq!(marker, 4);
            // State is back at the checkpoint; re-run the lost iterations.
            for _ in marker..7 {
                bump_and_sum(ctx, &data, &total, 1.0)?;
            }
            ctx.fetch_scalar(&total, 0)
        })
        .expect("job completes");
    assert_eq!(report.output, 7.0 * 24.0);
    assert_eq!(report.controller.checkpoints_committed, 1);
    assert_eq!(report.controller.failures_handled, 1);
}

#[test]
fn migrations_via_edits_keep_results_correct() {
    let cluster = Cluster::start(ClusterConfig::new(3), setup(2));
    let report = cluster
        .run_driver(|ctx| {
            let data = ctx.define_dataset("data", 6)?;
            let total = ctx.define_dataset("total", 1)?;
            let mut expected = 0.0;
            for i in 0..8u32 {
                if i == 3 {
                    ctx.migrate_tasks("step", 2)?;
                }
                bump_and_sum(ctx, &data, &total, 2.0)?;
                expected += 6.0 * 2.0 * 2.0;
                assert_eq!(ctx.fetch_scalar(&total, 0)?, expected, "iteration {i}");
            }
            Ok(())
        })
        .expect("job completes");
    assert!(report.controller.edits_applied > 0);
    assert!(report.controller.patches_applied > 0);
}
